type drop_reason = Unreachable | Endpoint_down | In_flight | Lost
type rpc_outcome = Rpc_ok | Rpc_timeout | Rpc_unreachable
type elem = { elem_id : int; elem_label : string }
type spec_op = Spec_add of elem | Spec_remove of elem

type spec_phase =
  | Phase_first
  | Phase_invocation_start
  | Phase_invocation_retry
  | Phase_returns
  | Phase_fails
  | Phase_suspends of elem
  | Phase_mutation of spec_op

type kind =
  | Fiber_spawn of { fiber : string }
  | Fiber_crash of { fiber : string; exn_text : string }
  | Sched of { at : float }
  | Fault_node_crash of { node : int }
  | Fault_node_recover of { node : int }
  | Fault_link_cut of { a : int; b : int }
  | Fault_link_heal of { a : int; b : int }
  | Fault_partition
  | Fault_heal_all
  | Net_send of { src : int; dst : int }
  | Net_deliver of { src : int; dst : int; sent_at : float }
  | Net_drop of { src : int; dst : int; reason : drop_reason }
  | Rpc_call of { src : int; dst : int; id : int }
  | Rpc_done of { src : int; dst : int; id : int; outcome : rpc_outcome }
  | Span_start of { span : int; name : string; node : int option }
  | Span_end of { span : int; name : string; node : int option; dur : float }
  | Store_op of { node : int; op : string }
  | Spec_observe of {
      set_id : int;
      phase : spec_phase;
      s : elem list;
      accessible : elem list;
    }
  | Custom of { label : string; detail : string }

type t = { seq : int; time : float; kind : kind }

let drop_reason_string = function
  | Unreachable -> "unreachable"
  | Endpoint_down -> "endpoint-down"
  | In_flight -> "in-flight"
  | Lost -> "lost"

let rpc_outcome_string = function
  | Rpc_ok -> "ok"
  | Rpc_timeout -> "timeout"
  | Rpc_unreachable -> "unreachable"

let phase_string = function
  | Phase_first -> "first"
  | Phase_invocation_start -> "invocation-start"
  | Phase_invocation_retry -> "invocation-retry"
  | Phase_returns -> "returns"
  | Phase_fails -> "fails"
  | Phase_suspends _ -> "suspends"
  | Phase_mutation (Spec_add _) -> "add"
  | Phase_mutation (Spec_remove _) -> "remove"

let label = function
  | Fiber_spawn _ -> "fiber"
  | Fiber_crash _ -> "fiber-crash"
  | Sched _ -> "sched"
  | Fault_node_crash _ | Fault_node_recover _ | Fault_link_cut _
  | Fault_link_heal _ | Fault_partition | Fault_heal_all ->
      "fault"
  | Net_send _ | Net_deliver _ | Net_drop _ -> "net"
  | Rpc_call _ | Rpc_done _ -> "rpc"
  | Span_start _ | Span_end _ -> "span"
  | Store_op _ -> "store"
  | Spec_observe _ -> "spec"
  | Custom { label; _ } -> label

(* Exact, locale-independent float rendering: hex notation round-trips
   every finite double, so canonical strings are injective on time and
   duration fields. *)
let hexf f = Printf.sprintf "%h" f
let node_str n = "n" ^ string_of_int n

let elem_string e = Printf.sprintf "%d:%s" e.elem_id e.elem_label

let elems_string es = String.concat "," (List.map elem_string es)

let detail = function
  | Fiber_spawn { fiber } -> "spawn " ^ fiber
  | Fiber_crash { fiber; exn_text } -> fiber ^ ": " ^ exn_text
  | Sched { at } -> "at=" ^ hexf at
  | Fault_node_crash { node } -> "crash " ^ node_str node
  | Fault_node_recover { node } -> "recover " ^ node_str node
  | Fault_link_cut { a; b } -> "cut " ^ node_str a ^ "-" ^ node_str b
  | Fault_link_heal { a; b } -> "heal " ^ node_str a ^ "-" ^ node_str b
  | Fault_partition -> "partition"
  | Fault_heal_all -> "heal-all"
  | Net_send { src; dst } -> "send " ^ node_str src ^ "->" ^ node_str dst
  | Net_deliver { src; dst; sent_at } ->
      Printf.sprintf "deliver %s->%s sent=%s" (node_str src) (node_str dst)
        (hexf sent_at)
  | Net_drop { src; dst; reason } ->
      Printf.sprintf "drop %s->%s %s" (node_str src) (node_str dst)
        (drop_reason_string reason)
  | Rpc_call { src; dst; id } ->
      Printf.sprintf "call#%d %s->%s" id (node_str src) (node_str dst)
  | Rpc_done { src; dst; id; outcome } ->
      Printf.sprintf "done#%d %s->%s %s" id (node_str src) (node_str dst)
        (rpc_outcome_string outcome)
  | Span_start { span; name; node } ->
      Printf.sprintf "start#%d %s%s" span name
        (match node with None -> "" | Some n -> " @" ^ node_str n)
  | Span_end { span; name; node; dur } ->
      Printf.sprintf "end#%d %s%s dur=%s" span name
        (match node with None -> "" | Some n -> " @" ^ node_str n)
        (hexf dur)
  | Store_op { node; op } -> op ^ " @" ^ node_str node
  | Spec_observe { set_id; phase; s; accessible } ->
      let extra =
        match phase with
        | Phase_suspends e -> " e=" ^ elem_string e
        | Phase_mutation (Spec_add e) | Phase_mutation (Spec_remove e) ->
            " e=" ^ elem_string e
        | _ -> ""
      in
      Printf.sprintf "set#%d %s%s s=[%s] acc=[%s]" set_id (phase_string phase)
        extra (elems_string s) (elems_string accessible)
  | Custom { detail; _ } -> detail

let tracer_view = function
  | Fiber_crash { fiber; exn_text } ->
      Some ("fiber-crash", fiber ^ ": " ^ exn_text)
  | ( Fault_node_crash _ | Fault_node_recover _ | Fault_link_cut _
    | Fault_link_heal _ | Fault_partition | Fault_heal_all ) as k ->
      Some ("fault", detail k)
  | Custom { label; detail } -> Some (label, detail)
  | _ -> None

let to_canonical t =
  Printf.sprintf "%d|%s|%s|%s" t.seq (hexf t.time) (label t.kind)
    (detail t.kind)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf {|{"seq":%d,"time":%.9g,"label":"%s","detail":"%s"}|} t.seq
    t.time
    (json_escape (label t.kind))
    (json_escape (detail t.kind))

let pp fmt t =
  Format.fprintf fmt "[%d @%g] %s: %s" t.seq t.time (label t.kind)
    (detail t.kind)

let dummy = { seq = -1; time = 0.0; kind = Custom { label = ""; detail = "" } }
