type drop_reason = Unreachable | Endpoint_down | In_flight | Lost
type rpc_outcome = Rpc_ok | Rpc_timeout | Rpc_unreachable
type elem = { elem_id : int; elem_label : string }
type spec_op = Spec_add of elem | Spec_remove of elem

type spec_phase =
  | Phase_first
  | Phase_invocation_start
  | Phase_invocation_retry
  | Phase_returns
  | Phase_fails
  | Phase_suspends of elem
  | Phase_mutation of spec_op

type park =
  | Park_yield
  | Park_sleep of float
  | Park_suspend
  | Park_done
  | Park_crash

type alert_severity = Sev_warn | Sev_crit
type cache_kind = Cache_dir | Cache_obj

type kind =
  | Fiber_spawn of { fid : int; fiber : string }
  | Run_begin of { fid : int; fiber : string }
  | Run_end of { fid : int; fiber : string; park : park }
  | Fiber_crash of { fiber : string; exn_text : string }
  | Sched of { at : float }
  | Fault_node_crash of { node : int }
  | Fault_node_recover of { node : int }
  | Fault_link_cut of { a : int; b : int }
  | Fault_link_heal of { a : int; b : int }
  | Fault_partition
  | Fault_heal_all
  | Net_send of { src : int; dst : int; lc : int }
  | Net_deliver of { src : int; dst : int; sent_at : float; send_lc : int; lc : int }
  | Net_drop of { src : int; dst : int; reason : drop_reason }
  | Rpc_call of { src : int; dst : int; id : int; lc : int; parent : int option }
  | Rpc_done of { src : int; dst : int; id : int; outcome : rpc_outcome; lc : int }
  | Span_start of { span : int; parent : int option; name : string; node : int option }
  | Span_end of { span : int; name : string; node : int option; dur : float }
  | Store_op of { node : int; op : string; parent : int option }
  | Cache_hit of { node : int; ckind : cache_kind; id : int; version : int; age : float }
  | Cache_miss of { node : int; ckind : cache_kind; id : int }
  | Cache_inval of { node : int; set_id : int; version : int }
  | Lease_expire of { node : int; ckind : cache_kind; id : int }
  | Spec_observe of {
      set_id : int;
      phase : spec_phase;
      s : elem list;
      accessible : elem list;
    }
  | Alert of {
      source : string;
      op : string;
      severity : alert_severity;
      burn : float;
      window : float;
      detail : string;
    }
  | Spec_violation of { set_id : int; where : string; message : string }
  | Custom of { label : string; detail : string }

type t = { seq : int; time : float; kind : kind }

let drop_reason_string = function
  | Unreachable -> "unreachable"
  | Endpoint_down -> "endpoint-down"
  | In_flight -> "in-flight"
  | Lost -> "lost"

let drop_reason_of_string = function
  | "unreachable" -> Some Unreachable
  | "endpoint-down" -> Some Endpoint_down
  | "in-flight" -> Some In_flight
  | "lost" -> Some Lost
  | _ -> None

let rpc_outcome_string = function
  | Rpc_ok -> "ok"
  | Rpc_timeout -> "timeout"
  | Rpc_unreachable -> "unreachable"

let rpc_outcome_of_string = function
  | "ok" -> Some Rpc_ok
  | "timeout" -> Some Rpc_timeout
  | "unreachable" -> Some Rpc_unreachable
  | _ -> None

let phase_string = function
  | Phase_first -> "first"
  | Phase_invocation_start -> "invocation-start"
  | Phase_invocation_retry -> "invocation-retry"
  | Phase_returns -> "returns"
  | Phase_fails -> "fails"
  | Phase_suspends _ -> "suspends"
  | Phase_mutation (Spec_add _) -> "add"
  | Phase_mutation (Spec_remove _) -> "remove"

let park_base = function
  | Park_yield -> "yield"
  | Park_sleep _ -> "sleep"
  | Park_suspend -> "suspend"
  | Park_done -> "done"
  | Park_crash -> "crash"

let severity_string = function Sev_warn -> "warn" | Sev_crit -> "crit"

let cache_kind_string = function Cache_dir -> "dir" | Cache_obj -> "obj"

let cache_kind_of_string = function
  | "dir" -> Some Cache_dir
  | "obj" -> Some Cache_obj
  | _ -> None

let severity_of_string = function
  | "warn" -> Some Sev_warn
  | "crit" -> Some Sev_crit
  | _ -> None

let label = function
  | Fiber_spawn _ -> "fiber"
  | Run_begin _ | Run_end _ -> "run"
  | Fiber_crash _ -> "fiber-crash"
  | Sched _ -> "sched"
  | Fault_node_crash _ | Fault_node_recover _ | Fault_link_cut _
  | Fault_link_heal _ | Fault_partition | Fault_heal_all ->
      "fault"
  | Net_send _ | Net_deliver _ | Net_drop _ -> "net"
  | Rpc_call _ | Rpc_done _ -> "rpc"
  | Span_start _ | Span_end _ -> "span"
  | Store_op _ -> "store"
  | Cache_hit _ | Cache_miss _ | Cache_inval _ | Lease_expire _ -> "cache"
  | Spec_observe _ -> "spec"
  | Alert _ -> "alert"
  | Spec_violation _ -> "spec-violation"
  | Custom { label; _ } -> label

(* Exact, locale-independent float rendering: hex notation round-trips
   every finite double, so canonical strings are injective on time and
   duration fields. *)
let hexf f = Printf.sprintf "%h" f
let node_str n = "n" ^ string_of_int n
let opt_int_str = function None -> "-" | Some i -> string_of_int i

let elem_string e = Printf.sprintf "%d:%s" e.elem_id e.elem_label

let elems_string es = String.concat "," (List.map elem_string es)

let park_string = function
  | Park_sleep wake -> "sleep until=" ^ hexf wake
  | p -> park_base p

let detail = function
  | Fiber_spawn { fid; fiber } -> Printf.sprintf "spawn #%d %s" fid fiber
  | Run_begin { fid; fiber } -> Printf.sprintf "begin #%d %s" fid fiber
  | Run_end { fid; fiber; park } ->
      Printf.sprintf "end #%d %s %s" fid fiber (park_string park)
  | Fiber_crash { fiber; exn_text } -> fiber ^ ": " ^ exn_text
  | Sched { at } -> "at=" ^ hexf at
  | Fault_node_crash { node } -> "crash " ^ node_str node
  | Fault_node_recover { node } -> "recover " ^ node_str node
  | Fault_link_cut { a; b } -> "cut " ^ node_str a ^ "-" ^ node_str b
  | Fault_link_heal { a; b } -> "heal " ^ node_str a ^ "-" ^ node_str b
  | Fault_partition -> "partition"
  | Fault_heal_all -> "heal-all"
  | Net_send { src; dst; lc } ->
      Printf.sprintf "send %s->%s lc=%d" (node_str src) (node_str dst) lc
  | Net_deliver { src; dst; sent_at; send_lc; lc } ->
      Printf.sprintf "deliver %s->%s sent=%s slc=%d lc=%d" (node_str src)
        (node_str dst) (hexf sent_at) send_lc lc
  | Net_drop { src; dst; reason } ->
      Printf.sprintf "drop %s->%s %s" (node_str src) (node_str dst)
        (drop_reason_string reason)
  | Rpc_call { src; dst; id; lc; parent } ->
      Printf.sprintf "call#%d %s->%s lc=%d parent=%s" id (node_str src)
        (node_str dst) lc (opt_int_str parent)
  | Rpc_done { src; dst; id; outcome; lc } ->
      Printf.sprintf "done#%d %s->%s %s lc=%d" id (node_str src) (node_str dst)
        (rpc_outcome_string outcome) lc
  | Span_start { span; parent; name; node } ->
      Printf.sprintf "start#%d %s%s parent=%s" span name
        (match node with None -> "" | Some n -> " @" ^ node_str n)
        (opt_int_str parent)
  | Span_end { span; name; node; dur } ->
      Printf.sprintf "end#%d %s%s dur=%s" span name
        (match node with None -> "" | Some n -> " @" ^ node_str n)
        (hexf dur)
  | Store_op { node; op; parent } ->
      Printf.sprintf "%s @%s parent=%s" op (node_str node) (opt_int_str parent)
  | Cache_hit { node; ckind; id; version; age } ->
      Printf.sprintf "hit %s#%d @%s v=%d age=%s" (cache_kind_string ckind) id
        (node_str node) version (hexf age)
  | Cache_miss { node; ckind; id } ->
      Printf.sprintf "miss %s#%d @%s" (cache_kind_string ckind) id (node_str node)
  | Cache_inval { node; set_id; version } ->
      Printf.sprintf "inval dir#%d @%s v=%d" set_id (node_str node) version
  | Lease_expire { node; ckind; id } ->
      Printf.sprintf "expire %s#%d @%s" (cache_kind_string ckind) id (node_str node)
  | Spec_observe { set_id; phase; s; accessible } ->
      let extra =
        match phase with
        | Phase_suspends e -> " e=" ^ elem_string e
        | Phase_mutation (Spec_add e) | Phase_mutation (Spec_remove e) ->
            " e=" ^ elem_string e
        | _ -> ""
      in
      Printf.sprintf "set#%d %s%s s=[%s] acc=[%s]" set_id (phase_string phase)
        extra (elems_string s) (elems_string accessible)
  | Alert { source; op; severity; burn; window; detail } ->
      Printf.sprintf "[%s] %s/%s burn=%s window=%s %s" (severity_string severity)
        source op (hexf burn) (hexf window) detail
  | Spec_violation { set_id; where; message } ->
      Printf.sprintf "set#%d %s: %s" set_id where message
  | Custom { detail; _ } -> detail

let to_canonical t =
  Printf.sprintf "%d|%s|%s|%s" t.seq (hexf t.time) (label t.kind)
    (detail t.kind)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- structured JSON (lossless; Event.of_json is the inverse) ------- *)

(* Floats are rendered with 17 significant digits, which round-trips
   every finite double through [float_of_string]. *)
let jfloat f = Printf.sprintf "%.17g" f

let jstr s = "\"" ^ json_escape s ^ "\""

let jelem e = Printf.sprintf {|{"id":%d,"label":%s}|} e.elem_id (jstr e.elem_label)

let jelems es = "[" ^ String.concat "," (List.map jelem es) ^ "]"

(* Kind-specific fields, as ["k":v,...] pairs (no braces).  [parent]-like
   options are omitted when [None]. *)
let kind_fields = function
  | Fiber_spawn { fid; fiber } ->
      Printf.sprintf {|"kind":"fiber_spawn","fid":%d,"fiber":%s|} fid (jstr fiber)
  | Run_begin { fid; fiber } ->
      Printf.sprintf {|"kind":"run_begin","fid":%d,"fiber":%s|} fid (jstr fiber)
  | Run_end { fid; fiber; park } ->
      Printf.sprintf {|"kind":"run_end","fid":%d,"fiber":%s,"park":%s%s|} fid (jstr fiber)
        (jstr (park_base park))
        (match park with
        | Park_sleep wake -> Printf.sprintf {|,"wake":%s|} (jfloat wake)
        | _ -> "")
  | Fiber_crash { fiber; exn_text } ->
      Printf.sprintf {|"kind":"fiber_crash","fiber":%s,"exn":%s|} (jstr fiber)
        (jstr exn_text)
  | Sched { at } -> Printf.sprintf {|"kind":"sched","at":%s|} (jfloat at)
  | Fault_node_crash { node } -> Printf.sprintf {|"kind":"fault_node_crash","node":%d|} node
  | Fault_node_recover { node } ->
      Printf.sprintf {|"kind":"fault_node_recover","node":%d|} node
  | Fault_link_cut { a; b } -> Printf.sprintf {|"kind":"fault_link_cut","a":%d,"b":%d|} a b
  | Fault_link_heal { a; b } -> Printf.sprintf {|"kind":"fault_link_heal","a":%d,"b":%d|} a b
  | Fault_partition -> {|"kind":"fault_partition"|}
  | Fault_heal_all -> {|"kind":"fault_heal_all"|}
  | Net_send { src; dst; lc } ->
      Printf.sprintf {|"kind":"net_send","src":%d,"dst":%d,"lc":%d|} src dst lc
  | Net_deliver { src; dst; sent_at; send_lc; lc } ->
      Printf.sprintf
        {|"kind":"net_deliver","src":%d,"dst":%d,"sent_at":%s,"send_lc":%d,"lc":%d|} src
        dst (jfloat sent_at) send_lc lc
  | Net_drop { src; dst; reason } ->
      Printf.sprintf {|"kind":"net_drop","src":%d,"dst":%d,"reason":%s|} src dst
        (jstr (drop_reason_string reason))
  | Rpc_call { src; dst; id; lc; parent } ->
      Printf.sprintf {|"kind":"rpc_call","src":%d,"dst":%d,"id":%d,"lc":%d%s|} src dst id
        lc
        (match parent with None -> "" | Some p -> Printf.sprintf {|,"parent":%d|} p)
  | Rpc_done { src; dst; id; outcome; lc } ->
      Printf.sprintf {|"kind":"rpc_done","src":%d,"dst":%d,"id":%d,"outcome":%s,"lc":%d|}
        src dst id
        (jstr (rpc_outcome_string outcome))
        lc
  | Span_start { span; parent; name; node } ->
      Printf.sprintf {|"kind":"span_start","span":%d,"name":%s%s%s|} span (jstr name)
        (match parent with None -> "" | Some p -> Printf.sprintf {|,"parent":%d|} p)
        (match node with None -> "" | Some n -> Printf.sprintf {|,"node":%d|} n)
  | Span_end { span; name; node; dur } ->
      Printf.sprintf {|"kind":"span_end","span":%d,"name":%s%s,"dur":%s|} span (jstr name)
        (match node with None -> "" | Some n -> Printf.sprintf {|,"node":%d|} n)
        (jfloat dur)
  | Store_op { node; op; parent } ->
      Printf.sprintf {|"kind":"store_op","node":%d,"op":%s%s|} node (jstr op)
        (match parent with None -> "" | Some p -> Printf.sprintf {|,"parent":%d|} p)
  | Cache_hit { node; ckind; id; version; age } ->
      Printf.sprintf
        {|"kind":"cache_hit","node":%d,"ckind":%s,"id":%d,"version":%d,"age":%s|} node
        (jstr (cache_kind_string ckind))
        id version (jfloat age)
  | Cache_miss { node; ckind; id } ->
      Printf.sprintf {|"kind":"cache_miss","node":%d,"ckind":%s,"id":%d|} node
        (jstr (cache_kind_string ckind))
        id
  | Cache_inval { node; set_id; version } ->
      Printf.sprintf {|"kind":"cache_inval","node":%d,"set_id":%d,"version":%d|} node
        set_id version
  | Lease_expire { node; ckind; id } ->
      Printf.sprintf {|"kind":"lease_expire","node":%d,"ckind":%s,"id":%d|} node
        (jstr (cache_kind_string ckind))
        id
  | Spec_observe { set_id; phase; s; accessible } ->
      let elem_field =
        match phase with
        | Phase_suspends e | Phase_mutation (Spec_add e) | Phase_mutation (Spec_remove e)
          ->
            Printf.sprintf {|,"elem":%s|} (jelem e)
        | _ -> ""
      in
      Printf.sprintf {|"kind":"spec_observe","set_id":%d,"phase":%s%s,"s":%s,"acc":%s|}
        set_id
        (jstr (phase_string phase))
        elem_field (jelems s) (jelems accessible)
  | Alert { source; op; severity; burn; window; detail } ->
      Printf.sprintf
        {|"kind":"alert","source":%s,"op":%s,"severity":%s,"burn":%s,"window":%s,"detail":%s|}
        (jstr source) (jstr op)
        (jstr (severity_string severity))
        (jfloat burn) (jfloat window) (jstr detail)
  | Spec_violation { set_id; where; message } ->
      Printf.sprintf {|"kind":"spec_violation","set_id":%d,"where":%s,"message":%s|} set_id
        (jstr where) (jstr message)
  | Custom { label; detail } ->
      Printf.sprintf {|"kind":"custom","clabel":%s,"detail":%s|} (jstr label) (jstr detail)

let to_json t =
  Printf.sprintf {|{"seq":%d,"time":%s,"label":%s,%s}|} t.seq (jfloat t.time)
    (jstr (label t.kind))
    (kind_fields t.kind)

(* --- JSON parsing: the inverse of [to_json] ------------------------- *)

exception Bad of string

let req what = function Some v -> v | None -> raise (Bad what)

let fint j k = req k (Option.bind (Json.member k j) Json.to_int)
let ffloat j k = req k (Option.bind (Json.member k j) Json.to_float)
let fstr j k = req k (Option.bind (Json.member k j) Json.to_string)

let fint_opt j k =
  match Json.member k j with
  | None | Some Json.Null -> None
  | Some v -> Some (req k (Json.to_int v))

let felem j =
  { elem_id = fint j "id"; elem_label = fstr j "label" }

let felems j k =
  List.map felem (req k (Option.bind (Json.member k j) Json.to_list))

let kind_of_json j =
  match fstr j "kind" with
  | "fiber_spawn" -> Fiber_spawn { fid = fint j "fid"; fiber = fstr j "fiber" }
  | "run_begin" -> Run_begin { fid = fint j "fid"; fiber = fstr j "fiber" }
  | "run_end" ->
      let park =
        match fstr j "park" with
        | "yield" -> Park_yield
        | "sleep" -> Park_sleep (ffloat j "wake")
        | "suspend" -> Park_suspend
        | "done" -> Park_done
        | "crash" -> Park_crash
        | p -> raise (Bad ("park " ^ p))
      in
      Run_end { fid = fint j "fid"; fiber = fstr j "fiber"; park }
  | "fiber_crash" -> Fiber_crash { fiber = fstr j "fiber"; exn_text = fstr j "exn" }
  | "sched" -> Sched { at = ffloat j "at" }
  | "fault_node_crash" -> Fault_node_crash { node = fint j "node" }
  | "fault_node_recover" -> Fault_node_recover { node = fint j "node" }
  | "fault_link_cut" -> Fault_link_cut { a = fint j "a"; b = fint j "b" }
  | "fault_link_heal" -> Fault_link_heal { a = fint j "a"; b = fint j "b" }
  | "fault_partition" -> Fault_partition
  | "fault_heal_all" -> Fault_heal_all
  | "net_send" -> Net_send { src = fint j "src"; dst = fint j "dst"; lc = fint j "lc" }
  | "net_deliver" ->
      Net_deliver
        {
          src = fint j "src";
          dst = fint j "dst";
          sent_at = ffloat j "sent_at";
          send_lc = fint j "send_lc";
          lc = fint j "lc";
        }
  | "net_drop" ->
      Net_drop
        {
          src = fint j "src";
          dst = fint j "dst";
          reason = req "reason" (drop_reason_of_string (fstr j "reason"));
        }
  | "rpc_call" ->
      Rpc_call
        {
          src = fint j "src";
          dst = fint j "dst";
          id = fint j "id";
          lc = fint j "lc";
          parent = fint_opt j "parent";
        }
  | "rpc_done" ->
      Rpc_done
        {
          src = fint j "src";
          dst = fint j "dst";
          id = fint j "id";
          outcome = req "outcome" (rpc_outcome_of_string (fstr j "outcome"));
          lc = fint j "lc";
        }
  | "span_start" ->
      Span_start
        {
          span = fint j "span";
          parent = fint_opt j "parent";
          name = fstr j "name";
          node = fint_opt j "node";
        }
  | "span_end" ->
      Span_end
        {
          span = fint j "span";
          name = fstr j "name";
          node = fint_opt j "node";
          dur = ffloat j "dur";
        }
  | "store_op" ->
      Store_op { node = fint j "node"; op = fstr j "op"; parent = fint_opt j "parent" }
  | "cache_hit" ->
      Cache_hit
        {
          node = fint j "node";
          ckind = req "ckind" (cache_kind_of_string (fstr j "ckind"));
          id = fint j "id";
          version = fint j "version";
          age = ffloat j "age";
        }
  | "cache_miss" ->
      Cache_miss
        {
          node = fint j "node";
          ckind = req "ckind" (cache_kind_of_string (fstr j "ckind"));
          id = fint j "id";
        }
  | "cache_inval" ->
      Cache_inval
        { node = fint j "node"; set_id = fint j "set_id"; version = fint j "version" }
  | "lease_expire" ->
      Lease_expire
        {
          node = fint j "node";
          ckind = req "ckind" (cache_kind_of_string (fstr j "ckind"));
          id = fint j "id";
        }
  | "spec_observe" ->
      let elem () = felem (req "elem" (Json.member "elem" j)) in
      let phase =
        match fstr j "phase" with
        | "first" -> Phase_first
        | "invocation-start" -> Phase_invocation_start
        | "invocation-retry" -> Phase_invocation_retry
        | "returns" -> Phase_returns
        | "fails" -> Phase_fails
        | "suspends" -> Phase_suspends (elem ())
        | "add" -> Phase_mutation (Spec_add (elem ()))
        | "remove" -> Phase_mutation (Spec_remove (elem ()))
        | p -> raise (Bad ("phase " ^ p))
      in
      Spec_observe
        { set_id = fint j "set_id"; phase; s = felems j "s"; accessible = felems j "acc" }
  | "alert" ->
      Alert
        {
          source = fstr j "source";
          op = fstr j "op";
          severity = req "severity" (severity_of_string (fstr j "severity"));
          burn = ffloat j "burn";
          window = ffloat j "window";
          detail = fstr j "detail";
        }
  | "spec_violation" ->
      Spec_violation
        { set_id = fint j "set_id"; where = fstr j "where"; message = fstr j "message" }
  | "custom" -> Custom { label = fstr j "clabel"; detail = fstr j "detail" }
  | k -> raise (Bad ("kind " ^ k))

let of_json j =
  match
    { seq = fint j "seq"; time = ffloat j "time"; kind = kind_of_json j }
  with
  | e -> Ok e
  | exception Bad what -> Error ("Event.of_json: missing or bad field: " ^ what)

let of_json_string s =
  match Json.of_string_opt s with
  | None -> Error "Event.of_json_string: malformed JSON"
  | Some j -> of_json j

let pp fmt t =
  Format.fprintf fmt "[%d @%g] %s: %s" t.seq t.time (label t.kind)
    (detail t.kind)

let dummy = { seq = -1; time = 0.0; kind = Custom { label = ""; detail = "" } }
