type cause =
  | Slo_burn of { op : string; severity : string; burn : float }
  | Monitor_violation of { set_id : int; where : string }
  | Node_crash of { node : int }
  | Oracle_verdict of { category : string; detail : string }
  | Manual of string

type dump = { d_time : float; d_cause : cause; d_json : string }

type span_info = {
  si_parent : int option;
  si_name : string;
  si_node : int option;
  si_start : float;
}

type t = {
  capacity : int;
  debounce : float;
  inflight_cap : int;
  bus : Bus.t;
  rings : (int, Ring.t) Hashtbl.t; (* node id, -1 = global *)
  inflight : (int, span_info) Hashtbl.t; (* span id -> open span *)
  mutable inflight_dropped : int;
  dropped_c : Metrics.counter; (* mirrors ring overwrites into the registry *)
  mutable last_dump : float option;
  mutable suppressed : int;
  mutable dumps_rev : dump list;
}

let cause_label = function
  | Slo_burn _ -> "slo-burn"
  | Monitor_violation _ -> "spec-violation"
  | Node_crash _ -> "node-crash"
  | Oracle_verdict _ -> "oracle-verdict"
  | Manual _ -> "manual"

let cause_describe = function
  | Slo_burn { op; severity; burn } ->
      Printf.sprintf "SLO burn on %s: severity=%s burn=%.3g" op severity burn
  | Monitor_violation { set_id; where } ->
      Printf.sprintf "spec violation on set %d at %s" set_id where
  | Node_crash { node } -> Printf.sprintf "node %d crashed" node
  | Oracle_verdict { category; detail } ->
      Printf.sprintf "oracle verdict [%s]: %s" category detail
  | Manual detail -> detail

let jfloat f = Printf.sprintf "%.17g" f

let cause_json c =
  let fields =
    match c with
    | Slo_burn { op; severity; burn } ->
        Printf.sprintf {|,"op":"%s","severity":"%s","burn":%s|}
          (Event.json_escape op) (Event.json_escape severity) (jfloat burn)
    | Monitor_violation { set_id; where } ->
        Printf.sprintf {|,"set_id":%d,"where":"%s"|} set_id
          (Event.json_escape where)
    | Node_crash { node } -> Printf.sprintf {|,"node":%d|} node
    | Oracle_verdict { category; detail } ->
        Printf.sprintf {|,"category":"%s","odetail":"%s"|}
          (Event.json_escape category) (Event.json_escape detail)
    | Manual _ -> ""
  in
  Printf.sprintf {|{"kind":"%s"%s,"detail":"%s"}|} (cause_label c) fields
    (Event.json_escape (cause_describe c))

(* Which ring an event belongs to: network traffic files under the node
   that acted (sender for sends and drops, receiver for deliveries), and
   node-stamped events under their node; everything else — scheduler,
   cluster-wide faults, alerts — goes to the global ring (-1). *)
let ring_node (k : Event.kind) =
  match k with
  | Net_send { src; _ } | Net_drop { src; _ } -> src
  | Net_deliver { dst; _ } -> dst
  | Rpc_call { src; _ } | Rpc_done { src; _ } -> src
  | Fault_node_crash { node } | Fault_node_recover { node } -> node
  | Store_op { node; _ } -> node
  | Cache_hit { node; _ }
  | Cache_miss { node; _ }
  | Cache_inval { node; _ }
  | Lease_expire { node; _ } -> node
  | Span_start { node = Some n; _ } | Span_end { node = Some n; _ } -> n
  | _ -> -1

let ring_for t node =
  match Hashtbl.find_opt t.rings node with
  | Some r -> r
  | None ->
      let r = Ring.create ~capacity:t.capacity in
      Hashtbl.replace t.rings node r;
      r

let record t (ev : Event.t) =
  (match ev.kind with
  | Span_start { span; parent; name; node } ->
      if Hashtbl.length t.inflight < t.inflight_cap then
        Hashtbl.replace t.inflight span
          { si_parent = parent; si_name = name; si_node = node; si_start = ev.time }
      else t.inflight_dropped <- t.inflight_dropped + 1
  | Span_end { span; _ } -> Hashtbl.remove t.inflight span
  | _ -> ());
  let r = ring_for t (ring_node ev.kind) in
  if Ring.length r = Ring.capacity r then Metrics.inc t.dropped_c;
  Ring.push r ev

let dropped_total t =
  Hashtbl.fold (fun _ r acc -> acc + Ring.dropped r) t.rings 0

let sorted_nodes t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rings [] |> List.sort compare

let render_dump t ~time c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"blackbox_version":1,"time":%s,"trigger":%s,"suppressed":%d,"capacity":%d,"dropped_total":%d,"inflight_dropped":%d|}
       (jfloat time) (cause_json c) t.suppressed t.capacity (dropped_total t)
       t.inflight_dropped);
  Buffer.add_string buf {|,"rings":[|};
  List.iteri
    (fun i node ->
      if i > 0 then Buffer.add_char buf ',';
      let r = Hashtbl.find t.rings node in
      Buffer.add_string buf
        (Printf.sprintf {|{"node":%d,"dropped":%d,"events":[|} node
           (Ring.dropped r));
      List.iteri
        (fun j ev ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Event.to_json ev))
        (Ring.to_list r);
      Buffer.add_string buf "]}")
    (sorted_nodes t);
  Buffer.add_string buf "]";
  let spans =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.inflight []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Buffer.add_string buf {|,"inflight":[|};
  List.iteri
    (fun i (span, si) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"span":%d%s,"name":"%s"%s,"start":%s}|} span
           (match si.si_parent with
           | None -> ""
           | Some p -> Printf.sprintf {|,"parent":%d|} p)
           (Event.json_escape si.si_name)
           (match si.si_node with
           | None -> ""
           | Some n -> Printf.sprintf {|,"node":%d|} n)
           (jfloat si.si_start)))
    spans;
  Buffer.add_string buf "]";
  Buffer.add_string buf
    (Printf.sprintf {|,"metrics":%s}|} (Metrics.to_json (Bus.metrics t.bus)));
  Buffer.contents buf

let trigger t ~time c =
  let debounced =
    match t.last_dump with
    | Some t0 -> time -. t0 < t.debounce
    | None -> false
  in
  if debounced then t.suppressed <- t.suppressed + 1
  else begin
    let json = render_dump t ~time c in
    t.dumps_rev <- { d_time = time; d_cause = c; d_json = json } :: t.dumps_rev;
    t.last_dump <- Some time;
    t.suppressed <- 0
  end

let sink t (ev : Event.t) =
  record t ev;
  match ev.kind with
  | Alert { op; severity; burn; _ } ->
      trigger t ~time:ev.time
        (Slo_burn { op; severity = Event.severity_string severity; burn })
  | Spec_violation { set_id; where; _ } ->
      trigger t ~time:ev.time (Monitor_violation { set_id; where })
  | Fault_node_crash { node } -> trigger t ~time:ev.time (Node_crash { node })
  | _ -> ()

let create ?(capacity = 512) ?(debounce = 50.0) ?(inflight_cap = 4096) bus =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  if debounce < 0.0 then invalid_arg "Flight.create: debounce must be >= 0";
  if inflight_cap <= 0 then
    invalid_arg "Flight.create: inflight_cap must be positive";
  let t =
    {
      capacity;
      debounce;
      inflight_cap;
      bus;
      rings = Hashtbl.create 8;
      inflight = Hashtbl.create 64;
      inflight_dropped = 0;
      dropped_c = Metrics.counter (Bus.metrics bus) "obs.flight.dropped";
      last_dump = None;
      suppressed = 0;
      dumps_rev = [];
    }
  in
  Bus.attach bus ~name:"flight" (sink t);
  t

let dumps t = List.rev t.dumps_rev
let suppressed t = t.suppressed

(* --- reading dumps back ---------------------------------------------- *)

type parsed = {
  p_time : float;
  p_cause_kind : string;
  p_cause_detail : string;
  p_suppressed : int;
  p_dropped : int;
  p_events : Event.t list;
  p_inflight : (int * string) list;
  p_metrics : Json.t;
}

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let req what conv field j =
  match Json.member field j with
  | None -> Error (Printf.sprintf "blackbox: missing %s.%s" what field)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "blackbox: ill-typed %s.%s" what field))

let parse_events rings =
  let rec ring_events acc = function
    | [] -> Ok acc
    | ring :: rest -> (
        match Json.member "events" ring with
        | Some (Json.Arr evs) ->
            let rec go acc = function
              | [] -> Ok acc
              | j :: tl -> (
                  match Event.of_json j with
                  | Ok ev -> go (ev :: acc) tl
                  | Error e -> Error ("blackbox: bad event: " ^ e))
            in
            let* acc = go acc evs in
            ring_events acc rest
        | _ -> Error "blackbox: ring without events array")
  in
  let* evs = ring_events [] rings in
  Ok (List.sort (fun (a : Event.t) b -> compare a.seq b.seq) evs)

let parse_dump s =
  match Json.of_string_opt s with
  | None -> Error "blackbox: not valid JSON"
  | Some j ->
      let* version = req "dump" Json.to_int "blackbox_version" j in
      if version <> 1 then
        Error (Printf.sprintf "blackbox: unsupported version %d" version)
      else
        let* p_time = req "dump" Json.to_float "time" j in
        let* trig =
          match Json.member "trigger" j with
          | Some t -> Ok t
          | None -> Error "blackbox: missing dump.trigger"
        in
        let* p_cause_kind = req "trigger" Json.to_string "kind" trig in
        let* p_cause_detail = req "trigger" Json.to_string "detail" trig in
        let* p_suppressed = req "dump" Json.to_int "suppressed" j in
        let* p_dropped = req "dump" Json.to_int "dropped_total" j in
        let* rings =
          match Json.member "rings" j with
          | Some (Json.Arr rs) -> Ok rs
          | _ -> Error "blackbox: missing dump.rings"
        in
        let* p_events = parse_events rings in
        let* p_inflight =
          match Json.member "inflight" j with
          | Some (Json.Arr spans) ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | sp :: tl ->
                    let* id = req "inflight" Json.to_int "span" sp in
                    let* name = req "inflight" Json.to_string "name" sp in
                    go ((id, name) :: acc) tl
              in
              go [] spans
          | _ -> Error "blackbox: missing dump.inflight"
        in
        let* p_metrics =
          match Json.member "metrics" j with
          | Some m -> Ok m
          | None -> Error "blackbox: missing dump.metrics"
        in
        Ok
          {
            p_time;
            p_cause_kind;
            p_cause_detail;
            p_suppressed;
            p_dropped;
            p_events;
            p_inflight;
            p_metrics;
          }

let tail_exemplars metrics =
  let of_cell key cell =
    match Json.member "exemplar" cell with
    | None -> None
    | Some e -> (
        match
          ( Option.bind (Json.member "value" e) Json.to_float,
            Option.bind (Json.member "time" e) Json.to_float )
        with
        | Some v, Some tm ->
            Some (key, v, tm, Option.bind (Json.member "span" e) Json.to_int)
        | _ -> None)
  in
  let entries =
    match metrics with
    | Json.Obj kvs ->
        List.concat_map
          (fun (key, v) ->
            match Json.member "exemplars" v with
            | Some (Json.Arr cells) -> List.filter_map (of_cell key) cells
            | _ -> [])
          kvs
    | _ -> []
  in
  List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a) entries
