(** Bounded in-memory event buffer: keeps the most recent [capacity]
    events, dropping the oldest when full.  The sink of choice for tests
    and post-mortem inspection of long runs. *)

type t

(** Raises [Invalid_argument] if [capacity <= 0]. *)
val create : capacity:int -> t

val capacity : t -> int
val length : t -> int

(** Events overwritten so far. *)
val dropped : t -> int

val push : t -> Event.t -> unit

(** Oldest first. *)
val to_list : t -> Event.t list

val clear : t -> unit

(** [sink r] is [push r], for {!Bus.attach}. *)
val sink : t -> Bus.sink
