(** Offline causal-trace analysis.

    Rebuilds span trees, RPC intervals and per-node Lamport order from a
    recorded event stream — either a live {!Ring} drain or a JSONL file
    written by the bench [--trace-jsonl] sink — then computes critical
    paths with per-phase latency attribution, flags anomalies, and diffs
    two traces by their digest-aligned common prefix.  All renderings
    are deterministic: the same event stream always produces
    byte-identical output. *)

(** {1 JSONL segments}

    A trace file is a sequence of {!Event.to_json} lines, optionally
    partitioned into per-world segments by [{"note":"name"}] lines. *)

type segment = { sname : string; events : Event.t list }

exception Malformed of string
(** Raised (with file:line context) on a line that is neither a valid
    event nor a note. *)

val load_file : string -> segment list

val iter_file : string -> (segment -> unit) -> unit
(** Streaming variant: one segment in memory at a time. *)

(** {1 Reconstruction} *)

type span = {
  id : int;
  name : string;
  node : int option;
  parent : int option;
  start_seq : int;
  start_time : float;
  mutable end_time : float option;  (** [None] = never closed *)
  mutable children : int list;  (** child span ids, stream order *)
  mutable rpcs : int list;  (** rpc ids parented here, stream order *)
  mutable ops : string list;  (** server store ops attributed here *)
}

type rpc = {
  rpc_id : int;
  rpc_src : int;
  rpc_dst : int;
  rpc_parent : int option;
  call_time : float;
  mutable done_time : float option;
  mutable outcome : Event.rpc_outcome option;
}

type t

val build : Event.t list -> t
val of_segment : segment -> t

val event_count : t -> int

(** Aggregated cache activity of the trace: hits, misses, wire
    invalidations and lease expiries, split dir/obj where the event
    carries the kind.  All zero when no lease cache ran. *)
type cache_counts = {
  cc_hit_dir : int;
  cc_hit_obj : int;
  cc_miss_dir : int;
  cc_miss_obj : int;
  cc_inval : int;
  cc_expire : int;
}

val cache_counts : t -> cache_counts

val span : t -> int -> span option
val spans : t -> span list  (** all spans, in start order *)

val roots : t -> span list
(** Parentless spans in start order, followed by orphans (spans whose
    parent never appeared — flagged as anomalies but still printable). *)

val rpcs : t -> rpc list
(** All rpcs, by id. *)

val span_dur : span -> float option

(** {1 Anomalies} *)

type anomaly =
  | Unclosed_span of span
  | Orphan_parent of span
  | Unfinished_rpc of rpc
  | Lamport_regression of { node : int; seq : int; lc : int; prev : int }
      (** a node's stamped clock failed to increase monotonically *)
  | Deliver_not_after_send of {
      seq : int;
      src : int;
      dst : int;
      send_lc : int;
      lc : int;
    }  (** a delivery not Lamport-after its send *)
  | Slow_span of { sp : span; dur : float; threshold : float }

val anomalies : ?slow_pct:float -> t -> anomaly list
(** In deterministic order.  [slow_pct] opts into flagging closed spans
    whose duration strictly exceeds that percentile of their own name's
    duration population. *)

val pp_anomaly : Format.formatter -> anomaly -> unit

(** {1 Critical path} *)

type cp_item = {
  cp_name : string;
  cp_id : int;
  cp_start : float;
  cp_end : float;
  cp_self : float;  (** duration not covered by the chosen child *)
}

val critical_path : t -> span -> cp_item list
(** Root-first chain obtained by repeatedly descending into the child
    span that finishes last; the [cp_self] values sum to the root's
    duration, so network/queueing time surfaces as self time of the
    client-side span that was blocked on it.  Empty if [root] never
    closed. *)

(** {1 Rendering} *)

val render_tree : ?times:bool -> ?max_depth:int -> t -> string
(** Span forest with nested rpcs and store ops.  [~times:false] prints
    structure only (no ids or timestamps) — stable across runs with
    different latencies. *)

val render_critpath : t -> string
val render_stats : t -> string
val render_anomalies : ?slow_pct:float -> t -> string

val critpath_summary : t -> string option
(** One line describing the slowest request's critical path, for the
    bench per-experiment report.  [None] if the trace has no closed
    root span. *)

(** {1 Diff} *)

type diff_result =
  | Identical of { events : int; digest : string }
  | Diverged of {
      common_prefix : int;
      prefix_digest : string;
      left : Event.t option;
      right : Event.t option;
    }

val diff_events : Event.t list -> Event.t list -> diff_result

val render_diff :
  left_name:string -> right_name:string -> Event.t list -> Event.t list -> string
