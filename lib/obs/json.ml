(* Minimal JSON reader for the trace toolchain.  Numbers keep their
   lexeme so integer and float fields round-trip exactly (Event.to_json
   prints ints as %d and floats as %.17g, which is injective on finite
   doubles); no dependency beyond the stdlib. *)

type t =
  | Null
  | Bool of bool
  | Num of string (* unparsed lexeme *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %c at %d, got %c" c st.pos c'
  | None -> fail "expected %c at %d, got end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape %s" hex
            in
            (* Our own writer only escapes control characters; decode the
               BMP code point as UTF-8 so foreign files stay readable. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            loop ()
        | _ -> fail "bad escape at %d" st.pos)
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  if st.pos = start then fail "expected number at %d" start;
  String.sub st.src start (st.pos - start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } at %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at %d" st.pos
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at %d" st.pos;
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* --- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Num lexeme -> ( try Some (int_of_string lexeme) with _ -> None)
  | _ -> None

let to_float = function
  | Num lexeme -> ( try Some (float_of_string lexeme) with _ -> None)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function Arr l -> Some l | _ -> None
