(** Exemplar-linked latency buckets: the forensic back-pointer from an
    aggregate percentile to one concrete trace.

    A table keeps a fixed set of log-scaled latency buckets; each bucket
    counts its samples and retains the {e worst-in-window} exemplar — the
    span id and timestamp of the largest sample observed within the last
    [window] of virtual time.  When the retained exemplar ages out of the
    window, the next sample replaces it regardless of value, so the table
    always points at evidence recent enough to still be in a flight
    recorder's ring.

    Memory is O(number of buckets) — a constant — no matter how long the
    run is, and every operation is deterministic: the same sample stream
    produces byte-identical {!to_json}. *)

type exemplar = {
  ex_value : float;  (** the sample itself (a latency, virtual time) *)
  ex_time : float;  (** virtual time the sample completed *)
  ex_span : int option;  (** span id stamped on the sample, if any *)
}

type t

(** Upper bounds of the log-scaled buckets (the final bucket is
    [infinity]).  Exposed so reports can label buckets consistently. *)
val bucket_bounds : float array

(** How far back (virtual time) a retained exemplar stays preferred over
    smaller, newer samples — the default [window] of {!create}. *)
val default_window : float

val create : ?window:float -> unit -> t

(** [observe t ~time ?span v] counts [v] into its bucket and retains it
    as the bucket's exemplar if it is the worst sample in the current
    window (or the retained one aged out). *)
val observe : t -> time:float -> ?span:int -> float -> unit

(** Total samples observed. *)
val count : t -> int

(** [(upper_bound, count, exemplar)] for every bucket, in bound order.
    Buckets that never saw a sample have count 0 and no exemplar. *)
val buckets : t -> (float * int * exemplar option) list

(** The tail exemplar: the retained exemplar with the largest value
    across all buckets (ties broken toward the higher bucket). *)
val worst : t -> exemplar option

(** Non-empty buckets as a JSON array:
    [[{"le":"2","count":3,"exemplar":{"value":…,"time":…,"span":…}},…]].
    The unbounded bucket renders as ["+Inf"]; [span] is omitted when the
    sample carried none.  Deterministic. *)
val to_json : t -> string
