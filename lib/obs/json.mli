(** Minimal JSON reader used by the trace toolchain ({!Trace},
    {!Event.of_json}).  Numbers keep their original lexeme, so integer
    and float fields round-trip exactly through {!Event.to_json}'s
    [%d]/[%.17g] renderings.  Intentionally tiny: no writer (events
    render themselves) and no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** unparsed number lexeme *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [of_string s] parses one complete JSON value; raises {!Parse_error}
    on malformed input or trailing garbage. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** [member k j] is the field [k] of object [j], if present. *)
val member : string -> t -> t option

val to_int : t -> int option
val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
