(* Offline trace analysis: rebuild span trees, RPCs and Lamport order
   from a recorded event stream (a live ring or a JSONL file), compute
   critical paths and per-phase latency attribution, and flag anomalies.
   Everything here is deterministic: same event stream, byte-identical
   renderings. *)

(* --- JSONL segments -------------------------------------------------- *)

type segment = { sname : string; events : Event.t list }

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* A trace file is a sequence of event lines, optionally partitioned by
   {"note":"..."} lines (one per world in a bench run). *)
let iter_file path f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let cur_name = ref None in
      let cur_events = ref [] in
      let flush () =
        if !cur_name <> None || !cur_events <> [] then
          f { sname = Option.value !cur_name ~default:""; events = List.rev !cur_events };
        cur_name := None;
        cur_events := []
      in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Json.of_string_opt line with
             | None -> malformed "%s:%d: not JSON" path !lineno
             | Some j -> (
                 match Option.bind (Json.member "note" j) Json.to_string with
                 | Some note ->
                     flush ();
                     cur_name := Some note
                 | None -> (
                     match Event.of_json j with
                     | Ok e -> cur_events := e :: !cur_events
                     | Error msg -> malformed "%s:%d: %s" path !lineno msg))
         done
       with End_of_file -> ());
      flush ())

let load_file path =
  let acc = ref [] in
  iter_file path (fun seg -> acc := seg :: !acc);
  List.rev !acc

(* --- reconstruction -------------------------------------------------- *)

type span = {
  id : int;
  name : string;
  node : int option;
  parent : int option;
  start_seq : int;
  start_time : float;
  mutable end_time : float option; (* None = never closed *)
  mutable children : int list; (* child span ids, stream order *)
  mutable rpcs : int list; (* rpc ids parented here, stream order *)
  mutable ops : string list; (* store ops parented here, stream order *)
}

type rpc = {
  rpc_id : int;
  rpc_src : int;
  rpc_dst : int;
  rpc_parent : int option;
  call_time : float;
  mutable done_time : float option;
  mutable outcome : Event.rpc_outcome option;
}

type cache_counts = {
  cc_hit_dir : int;
  cc_hit_obj : int;
  cc_miss_dir : int;
  cc_miss_obj : int;
  cc_inval : int;
  cc_expire : int;
}

let no_cache_activity =
  { cc_hit_dir = 0; cc_hit_obj = 0; cc_miss_dir = 0; cc_miss_obj = 0; cc_inval = 0; cc_expire = 0 }

type t = {
  event_count : int;
  span_tbl : (int, span) Hashtbl.t;
  rpc_tbl : (int, rpc) Hashtbl.t;
  root_ids : int list; (* parentless spans, stream order *)
  orphan_ids : int list; (* spans whose parent never started, stream order *)
  label_counts : (string * int) list; (* per event label, sorted *)
  cache : cache_counts;
  (* (seq, node, lc) of every Lamport-stamped event, stream order *)
  stamped : (int * int * int) list;
  (* (seq, src, dst, send_lc, lc) of every delivery, stream order *)
  delivers : (int * int * int * int * int) list;
}

let span_dur s = Option.map (fun e -> e -. s.start_time) s.end_time

let build events =
  let span_tbl = Hashtbl.create 256 in
  let rpc_tbl = Hashtbl.create 256 in
  let order = ref [] in
  let label_counts = Hashtbl.create 16 in
  let stamped = ref [] in
  let delivers = ref [] in
  let cache = ref no_cache_activity in
  let n = ref 0 in
  let bump_label k =
    let l = Event.label k in
    Hashtbl.replace label_counts l (1 + Option.value (Hashtbl.find_opt label_counts l) ~default:0)
  in
  let stamp seq node lc = stamped := (seq, node, lc) :: !stamped in
  List.iter
    (fun (e : Event.t) ->
      incr n;
      bump_label e.kind;
      match e.kind with
      | Event.Span_start { span = id; parent; name; node } ->
          let s =
            {
              id;
              name;
              node;
              parent;
              start_seq = e.seq;
              start_time = e.time;
              end_time = None;
              children = [];
              rpcs = [];
              ops = [];
            }
          in
          Hashtbl.replace span_tbl id s;
          order := id :: !order;
          Option.iter
            (fun p ->
              match Hashtbl.find_opt span_tbl p with
              | Some ps -> ps.children <- id :: ps.children
              | None -> ())
            parent
      | Event.Span_end { span = id; _ } -> (
          match Hashtbl.find_opt span_tbl id with
          | Some s -> s.end_time <- Some e.time
          | None -> ())
      | Event.Rpc_call { src; dst; id; lc; parent } ->
          stamp e.seq src lc;
          let r =
            {
              rpc_id = id;
              rpc_src = src;
              rpc_dst = dst;
              rpc_parent = parent;
              call_time = e.time;
              done_time = None;
              outcome = None;
            }
          in
          Hashtbl.replace rpc_tbl id r;
          Option.iter
            (fun p ->
              match Hashtbl.find_opt span_tbl p with
              | Some ps -> ps.rpcs <- id :: ps.rpcs
              | None -> ())
            parent
      | Event.Rpc_done { src; id; outcome; lc; _ } -> (
          stamp e.seq src lc;
          match Hashtbl.find_opt rpc_tbl id with
          | Some r ->
              r.done_time <- Some e.time;
              r.outcome <- Some outcome
          | None -> ())
      | Event.Net_send { src; lc; _ } -> stamp e.seq src lc
      | Event.Net_deliver { src; dst; send_lc; lc; _ } ->
          stamp e.seq dst lc;
          delivers := (e.seq, src, dst, send_lc, lc) :: !delivers
      | Event.Store_op { op; parent; _ } ->
          Option.iter
            (fun p ->
              match Hashtbl.find_opt span_tbl p with
              | Some ps -> ps.ops <- op :: ps.ops
              | None -> ())
            parent
      | Event.Cache_hit { ckind = Event.Cache_dir; _ } ->
          cache := { !cache with cc_hit_dir = !cache.cc_hit_dir + 1 }
      | Event.Cache_hit { ckind = Event.Cache_obj; _ } ->
          cache := { !cache with cc_hit_obj = !cache.cc_hit_obj + 1 }
      | Event.Cache_miss { ckind = Event.Cache_dir; _ } ->
          cache := { !cache with cc_miss_dir = !cache.cc_miss_dir + 1 }
      | Event.Cache_miss { ckind = Event.Cache_obj; _ } ->
          cache := { !cache with cc_miss_obj = !cache.cc_miss_obj + 1 }
      | Event.Cache_inval _ -> cache := { !cache with cc_inval = !cache.cc_inval + 1 }
      | Event.Lease_expire _ -> cache := { !cache with cc_expire = !cache.cc_expire + 1 }
      | _ -> ())
    events;
  Hashtbl.iter
    (fun _ s ->
      s.children <- List.rev s.children;
      s.rpcs <- List.rev s.rpcs;
      s.ops <- List.rev s.ops)
    span_tbl;
  let all_ids = List.rev !order in
  let root_ids =
    List.filter (fun id -> (Hashtbl.find span_tbl id).parent = None) all_ids
  in
  let orphan_ids =
    List.filter
      (fun id ->
        match (Hashtbl.find span_tbl id).parent with
        | Some p -> not (Hashtbl.mem span_tbl p)
        | None -> false)
      all_ids
  in
  {
    event_count = !n;
    span_tbl;
    rpc_tbl;
    root_ids;
    orphan_ids;
    label_counts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) label_counts []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    cache = !cache;
    stamped = List.rev !stamped;
    delivers = List.rev !delivers;
  }

let of_segment seg = build seg.events

let event_count t = t.event_count
let span t id = Hashtbl.find_opt t.span_tbl id

let spans t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.span_tbl []
  |> List.sort (fun a b -> compare a.start_seq b.start_seq)

(* Orphans have a parent that never appeared, so nothing links down to
   them: treat them as extra roots to keep every span printable. *)
let roots t = List.map (Hashtbl.find t.span_tbl) (t.root_ids @ t.orphan_ids)

let rpcs t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.rpc_tbl []
  |> List.sort (fun a b -> compare a.rpc_id b.rpc_id)

(* --- anomalies ------------------------------------------------------- *)

type anomaly =
  | Unclosed_span of span
  | Orphan_parent of span
  | Unfinished_rpc of rpc
  | Lamport_regression of { node : int; seq : int; lc : int; prev : int }
  | Deliver_not_after_send of { seq : int; src : int; dst : int; send_lc : int; lc : int }
  | Slow_span of { sp : span; dur : float; threshold : float }

let pp_anomaly fmt = function
  | Unclosed_span s ->
      Format.fprintf fmt "unclosed span #%d %s (started t=%.2f)" s.id s.name s.start_time
  | Orphan_parent s ->
      Format.fprintf fmt "span #%d %s has orphan parent #%d" s.id s.name
        (Option.value s.parent ~default:(-1))
  | Unfinished_rpc r ->
      Format.fprintf fmt "rpc#%d n%d->n%d never completed (called t=%.2f)" r.rpc_id
        r.rpc_src r.rpc_dst r.call_time
  | Lamport_regression { node; seq; lc; prev } ->
      Format.fprintf fmt "lamport regression on n%d at seq %d: lc=%d after lc=%d" node seq
        lc prev
  | Deliver_not_after_send { seq; src; dst; send_lc; lc } ->
      Format.fprintf fmt
        "delivery n%d->n%d at seq %d not lamport-after its send (lc=%d <= send_lc=%d)" src
        dst seq lc send_lc
  | Slow_span { sp; dur; threshold } ->
      Format.fprintf fmt "slow span #%d %s: dur=%.2f exceeds p-threshold %.2f" sp.id
        sp.name dur threshold

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Trace.percentile: empty"
  else if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let frac = rank -. float_of_int lo in
    if lo >= n - 1 then sorted.(n - 1)
    else (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(lo + 1) *. frac)
  end

(* [slow_pct], when given, additionally flags every closed span whose
   duration strictly exceeds that percentile of its name's population —
   an opt-in check, since any long-tailed population has spans above its
   own p99. *)
let anomalies ?slow_pct t =
  let acc = ref [] in
  let add a = acc := a :: !acc in
  List.iter
    (fun s ->
      if s.end_time = None then add (Unclosed_span s);
      match s.parent with
      | Some p when not (Hashtbl.mem t.span_tbl p) -> add (Orphan_parent s)
      | _ -> ())
    (spans t);
  List.iter (fun r -> if r.done_time = None then add (Unfinished_rpc r)) (rpcs t);
  let last = Hashtbl.create 16 in
  List.iter
    (fun (seq, node, lc) ->
      (match Hashtbl.find_opt last node with
      | Some prev when lc <= prev -> add (Lamport_regression { node; seq; lc; prev })
      | _ -> ());
      Hashtbl.replace last node lc)
    t.stamped;
  List.iter
    (fun (seq, src, dst, send_lc, lc) ->
      if lc <= send_lc then add (Deliver_not_after_send { seq; src; dst; send_lc; lc }))
    t.delivers;
  (match slow_pct with
  | None -> ()
  | Some p ->
      let by_name = Hashtbl.create 16 in
      List.iter
        (fun s ->
          match span_dur s with
          | Some d ->
              Hashtbl.replace by_name s.name
                (d :: Option.value (Hashtbl.find_opt by_name s.name) ~default:[])
          | None -> ())
        (spans t);
      let thresholds = Hashtbl.create 16 in
      Hashtbl.iter
        (fun name durs ->
          let a = Array.of_list durs in
          Array.sort compare a;
          Hashtbl.replace thresholds name (percentile a p))
        by_name;
      List.iter
        (fun s ->
          match span_dur s with
          | Some dur ->
              let threshold = Hashtbl.find thresholds s.name in
              if dur > threshold then add (Slow_span { sp = s; dur; threshold })
          | None -> ())
        (spans t));
  List.rev !acc

(* --- critical path --------------------------------------------------- *)

type cp_item = { cp_name : string; cp_id : int; cp_start : float; cp_end : float; cp_self : float }

(* The critical path of a closed span: repeatedly descend into the child
   span that finishes last (the one the parent was waiting on at the
   end); each step's [cp_self] is the parent's duration not covered by
   the chosen child, so the selfs sum to the root's duration.  Network
   and queueing time surfaces as self time of the client-side span that
   was blocked on it.  Ties break on later start, then lower id, so the
   chain is deterministic. *)
let critical_path t root =
  match root.end_time with
  | None -> []
  | Some root_end ->
      let chosen_child s =
        List.fold_left
          (fun best id ->
            let c = Hashtbl.find t.span_tbl id in
            match c.end_time with
            | None -> best
            | Some e -> (
                match best with
                | Some (_, be) when be > e -> best
                | Some (b, be)
                  when be = e
                       && (b.start_time > c.start_time
                          || (b.start_time = c.start_time && b.id < c.id)) ->
                    best
                | _ -> Some (c, e)))
          None s.children
      in
      let rec walk s s_end acc =
        match chosen_child s with
        | None ->
            {
              cp_name = s.name;
              cp_id = s.id;
              cp_start = s.start_time;
              cp_end = s_end;
              cp_self = s_end -. s.start_time;
            }
            :: acc
        | Some (c, c_end) ->
            let c_end = Float.min c_end s_end in
            let self = s_end -. s.start_time -. (c_end -. c.start_time) in
            walk c c_end
              ({
                 cp_name = s.name;
                 cp_id = s.id;
                 cp_start = s.start_time;
                 cp_end = s_end;
                 cp_self = Float.max 0.0 self;
               }
              :: acc)
      in
      List.rev (walk root root_end [])

(* --- rendering (all deterministic) ----------------------------------- *)

let outcome_str = function
  | Event.Rpc_ok -> "ok"
  | Event.Rpc_timeout -> "timeout"
  | Event.Rpc_unreachable -> "unreachable"

let node_suffix = function None -> "" | Some n -> Printf.sprintf " @n%d" n

let render_tree ?(times = true) ?max_depth t =
  let buf = Buffer.create 1024 in
  let rec pr depth s =
    let cut = match max_depth with Some d -> depth >= d | None -> false in
    let indent = String.make (2 * depth) ' ' in
    if times then
      Buffer.add_string buf
        (Printf.sprintf "%s%s#%d%s t=%.2f %s\n" indent s.name s.id (node_suffix s.node)
           s.start_time
           (match span_dur s with
           | Some d -> Printf.sprintf "dur=%.2f" d
           | None -> "UNCLOSED"))
    else
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s%s\n" indent s.name (node_suffix s.node)
           (match s.end_time with Some _ -> "" | None -> " UNCLOSED"));
    if not cut then begin
      List.iter
        (fun id ->
          let r = Hashtbl.find t.rpc_tbl id in
          if times then
            Buffer.add_string buf
              (Printf.sprintf "%s  rpc#%d n%d->n%d %s%s\n" indent r.rpc_id r.rpc_src
                 r.rpc_dst
                 (match r.outcome with Some o -> outcome_str o | None -> "UNFINISHED")
                 (match r.done_time with
                 | Some d -> Printf.sprintf " dur=%.2f" (d -. r.call_time)
                 | None -> ""))
          else
            Buffer.add_string buf
              (Printf.sprintf "%s  rpc n%d->n%d %s\n" indent r.rpc_src r.rpc_dst
                 (match r.outcome with Some o -> outcome_str o | None -> "UNFINISHED")))
        s.rpcs;
      List.iter
        (fun op -> Buffer.add_string buf (Printf.sprintf "%s  op %s\n" indent op))
        s.ops;
      List.iter (fun id -> pr (depth + 1) (Hashtbl.find t.span_tbl id)) s.children
    end
  in
  List.iter (pr 0) (roots t);
  Buffer.contents buf

let cache_counts t = t.cache

(* "cache: dir 12/14 hit, obj 30/40 hit, 2 invals, 1 expiries" — shared
   by the critpath and stats renderings; empty when no cache ran. *)
let cache_line t =
  let c = t.cache in
  if c = no_cache_activity then ""
  else
    Printf.sprintf "cache: dir %d/%d hit, obj %d/%d hit, %d invals, %d expiries\n"
      c.cc_hit_dir (c.cc_hit_dir + c.cc_miss_dir) c.cc_hit_obj
      (c.cc_hit_obj + c.cc_miss_obj) c.cc_inval c.cc_expire

let render_critpath t =
  let buf = Buffer.create 1024 in
  let phase_totals = Hashtbl.create 16 in
  let nroots = ref 0 in
  List.iter
    (fun root ->
      match critical_path t root with
      | [] -> ()
      | path ->
          incr nroots;
          let total = (List.hd path).cp_end -. (List.hd path).cp_start in
          Buffer.add_string buf
            (Printf.sprintf "request %s#%d: total=%.2f\n" root.name root.id total);
          List.iter
            (fun item ->
              Hashtbl.replace phase_totals item.cp_name
                (item.cp_self
                +. Option.value (Hashtbl.find_opt phase_totals item.cp_name) ~default:0.0);
              Buffer.add_string buf
                (Printf.sprintf "  %-24s self=%8.2f (%5.1f%%)  [%.2f .. %.2f]\n"
                   (Printf.sprintf "%s#%d" item.cp_name item.cp_id)
                   item.cp_self
                   (if total > 0.0 then 100.0 *. item.cp_self /. total else 0.0)
                   item.cp_start item.cp_end))
            path)
    (roots t);
  if !nroots > 1 then begin
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_totals []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 entries in
    Buffer.add_string buf "phase totals over all requests:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %8.2f (%5.1f%%)\n" name v
             (if total > 0.0 then 100.0 *. v /. total else 0.0)))
      entries
  end;
  (* Hit time shows up above as client.*.cached phases (≈0 self time);
     this line gives the ratio those phases were won at. *)
  Buffer.add_string buf (cache_line t);
  Buffer.contents buf

let render_stats t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "events: %d\n" t.event_count);
  List.iter
    (fun (l, n) -> Buffer.add_string buf (Printf.sprintf "  %-12s %d\n" l n))
    t.label_counts;
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let closed, durs =
        Option.value (Hashtbl.find_opt by_name s.name) ~default:(0, [])
      in
      match span_dur s with
      | Some d -> Hashtbl.replace by_name s.name (closed + 1, d :: durs)
      | None -> Hashtbl.replace by_name s.name (closed, durs))
    (spans t);
  let names =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if names <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-24s %6s %6s %8s %8s %8s %8s\n" "span" "n" "open" "mean" "p50"
         "p95" "max");
    List.iter
      (fun (name, (closed, durs)) ->
        let open_ =
          List.length (List.filter (fun s -> s.name = name && s.end_time = None) (spans t))
        in
        if closed = 0 then
          Buffer.add_string buf
            (Printf.sprintf "%-24s %6d %6d %8s %8s %8s %8s\n" name closed open_ "-" "-"
               "-" "-")
        else begin
          let a = Array.of_list durs in
          Array.sort compare a;
          let sum = Array.fold_left ( +. ) 0.0 a in
          Buffer.add_string buf
            (Printf.sprintf "%-24s %6d %6d %8.2f %8.2f %8.2f %8.2f\n" name closed open_
               (sum /. float_of_int closed)
               (percentile a 50.0) (percentile a 95.0)
               a.(Array.length a - 1))
        end)
      names
  end;
  let rs = rpcs t in
  if rs <> [] then begin
    let count o = List.length (List.filter (fun r -> r.outcome = Some o) rs) in
    Buffer.add_string buf
      (Printf.sprintf "rpcs: %d (ok=%d timeout=%d unreachable=%d unfinished=%d)\n"
         (List.length rs) (count Event.Rpc_ok) (count Event.Rpc_timeout)
         (count Event.Rpc_unreachable)
         (List.length (List.filter (fun r -> r.done_time = None) rs)))
  end;
  let last = Hashtbl.create 16 in
  List.iter (fun (_, node, lc) -> Hashtbl.replace last node lc) t.stamped;
  let clocks =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) last []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if clocks <> [] then begin
    Buffer.add_string buf "lamport clocks at end of trace:\n";
    List.iter
      (fun (node, lc) -> Buffer.add_string buf (Printf.sprintf "  n%-4d %d\n" node lc))
      clocks
  end;
  Buffer.add_string buf (cache_line t);
  Buffer.contents buf

let render_anomalies ?slow_pct t =
  let anoms = anomalies ?slow_pct t in
  match anoms with
  | [] -> "no anomalies\n"
  | _ ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "%d anomalies:\n" (List.length anoms));
      List.iter
        (fun a -> Buffer.add_string buf (Format.asprintf "  %a\n" pp_anomaly a))
        anoms;
      Buffer.contents buf

(* One-line summary of the slowest request in a segment, for the bench
   per-experiment report. *)
let critpath_summary t =
  let slowest =
    List.fold_left
      (fun best root ->
        match span_dur root with
        | None -> best
        | Some d -> (
            match best with
            | Some (_, bd) when bd >= d -> best
            | _ -> Some (root, d)))
      None (roots t)
  in
  match slowest with
  | None -> None
  | Some (root, d) ->
      let path = critical_path t root in
      let phases =
        List.map
          (fun i ->
            Printf.sprintf "%s %.0f%%" i.cp_name
              (if d > 0.0 then 100.0 *. i.cp_self /. d else 0.0))
          path
      in
      Some
        (Printf.sprintf "slowest %s#%d dur=%.2f: %s" root.name root.id d
           (String.concat " / " phases))

(* --- diff ------------------------------------------------------------ *)

type diff_result =
  | Identical of { events : int; digest : string }
  | Diverged of {
      common_prefix : int;
      prefix_digest : string;
      left : Event.t option; (* first event past the common prefix, if any *)
      right : Event.t option;
    }

(* Digest-aligned prefix diff: find the longest common prefix of the two
   canonical streams, then report the first divergent pair. *)
let diff_events ea eb =
  let d = Digest.create () in
  let rec walk n = function
    | [], [] -> Identical { events = n; digest = Digest.value d }
    | a :: ta, b :: tb when Event.to_canonical a = Event.to_canonical b ->
        Digest.feed d a;
        walk (n + 1) (ta, tb)
    | la, lb ->
        let hd = function [] -> None | x :: _ -> Some x in
        Diverged
          {
            common_prefix = n;
            prefix_digest = Digest.value d;
            left = hd la;
            right = hd lb;
          }
  in
  walk 0 (ea, eb)

let render_diff ~left_name ~right_name ea eb =
  let buf = Buffer.create 256 in
  (match diff_events ea eb with
  | Identical { events; digest } ->
      Buffer.add_string buf
        (Printf.sprintf "identical: %d events, digest %s\n" events digest)
  | Diverged { common_prefix; prefix_digest; left; right } ->
      Buffer.add_string buf
        (Printf.sprintf "diverged after %d common events (prefix digest %s)\n"
           common_prefix prefix_digest);
      let side name = function
        | Some e -> Printf.sprintf "  %s: %s\n" name (Event.to_canonical e)
        | None -> Printf.sprintf "  %s: <end of stream>\n" name
      in
      Buffer.add_string buf (side left_name left);
      Buffer.add_string buf (side right_name right));
  Buffer.contents buf
