type t = { oc : out_channel; mutable closed : bool }

let open_file path = { oc = open_out path; closed = false }

let write t e =
  if not t.closed then begin
    output_string t.oc (Event.to_json e);
    output_char t.oc '\n'
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let note t s =
  if not t.closed then
    output_string t.oc (Printf.sprintf "{\"note\":\"%s\"}\n" (json_escape s))

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end

let sink t = write t
