(** Black-box flight recorder: always-on bounded capture, dumped only
    when something goes wrong.

    A recorder keeps one lossy {!Ring} of recent events per node (plus a
    global ring for node-less events) and a compact table of in-flight
    spans, so total memory is O(rings × capacity) no matter how long the
    run is.  Attached to a {!Bus} it watches the stream for trouble —
    {!Event.Alert} (SLO burn), {!Event.Spec_violation} (online monitor),
    {!Event.Fault_node_crash} — and external judges (the VOPR oracle)
    can {!trigger} it directly.  Each trigger snapshots every ring, the
    in-flight spans, the metrics registry and the trigger cause into one
    deterministic JSON dump; triggers within [debounce] virtual time of
    the previous dump are counted as suppressed instead, so one incident
    yields one dump.

    Dumps are byte-identical across replays of the same seed: virtual
    time, event sequence numbers and sorted rendering leave no room for
    wall-clock or hash-order noise. *)

type t

(** Why a dump was taken. *)
type cause =
  | Slo_burn of { op : string; severity : string; burn : float }
      (** an {!Event.Alert} latched on the bus *)
  | Monitor_violation of { set_id : int; where : string }
      (** the online spec monitor published {!Event.Spec_violation} *)
  | Node_crash of { node : int }  (** {!Event.Fault_node_crash} *)
  | Oracle_verdict of { category : string; detail : string }
      (** an external judge (VOPR oracle) called {!trigger} *)
  | Manual of string  (** operator- or test-initiated *)

type dump = {
  d_time : float;  (** virtual time of the trigger *)
  d_cause : cause;
  d_json : string;  (** the complete dump document, one line *)
}

(** [create ?capacity ?debounce ?inflight_cap bus] makes a recorder over
    [bus]'s metrics registry and attaches it as the bus sink named
    ["flight"].  [capacity] bounds each per-node ring (default 512);
    [debounce] is the virtual-time window within which repeat triggers
    are suppressed (default 50.0); [inflight_cap] bounds the span table
    (default 4096).  Also interns the ["obs.flight.dropped"] counter so
    ring overwrites are visible in metrics snapshots. *)
val create : ?capacity:int -> ?debounce:float -> ?inflight_cap:int -> Bus.t -> t

(** The recorder's sink (already attached by {!create}; exposed for
    re-attachment after a [Bus.detach]). *)
val sink : t -> Bus.sink

(** [trigger t ~time cause] requests a dump, subject to debounce. *)
val trigger : t -> time:float -> cause -> unit

(** Dumps taken so far, oldest first. *)
val dumps : t -> dump list

(** Events overwritten across all rings so far. *)
val dropped_total : t -> int

(** Triggers suppressed by debounce since the last dump. *)
val suppressed : t -> int

(** Short kind tag of a cause: ["slo-burn"], ["spec-violation"],
    ["node-crash"], ["oracle-verdict"] or ["manual"]. *)
val cause_label : cause -> string

(** One-line human rendering of a cause. *)
val cause_describe : cause -> string

(** {1 Reading dumps back}

    The offline half: [weakset_trace blackbox] and tests parse dump
    documents with these. *)

type parsed = {
  p_time : float;
  p_cause_kind : string;
  p_cause_detail : string;
  p_suppressed : int;
  p_dropped : int;  (** total ring overwrites at dump time *)
  p_events : Event.t list;  (** all rings merged, sequence order *)
  p_inflight : (int * string) list;  (** (span id, name), id order *)
  p_metrics : Json.t;  (** the embedded metrics registry snapshot *)
}

(** [parse_dump s] reads a document produced by a trigger; [Error _]
    names the first missing or ill-typed field. *)
val parse_dump : string -> (parsed, string) result

(** [tail_exemplars metrics] extracts every histogram exemplar from a
    metrics snapshot (as embedded in dumps or [--metrics-json] output):
    [(metric key, value, time, span id)] sorted worst-first. *)
val tail_exemplars : Json.t -> (string * float * float * int option) list
