type exemplar = { ex_value : float; ex_time : float; ex_span : int option }

(* Powers of two spanning the latencies this simulator produces: unit
   link latency puts healthy client ops around 2, RPC timeouts at 30,
   lock waits and fault-window stalls into the hundreds. *)
let bucket_bounds =
  [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; infinity |]

let default_window = 1_000.0

type bucket = { mutable count : int; mutable ex : exemplar option }

type t = { window : float; total : int ref; cells : bucket array }

let create ?(window = default_window) () =
  if window <= 0.0 then invalid_arg "Exemplar.create: window must be positive";
  {
    window;
    total = ref 0;
    cells = Array.init (Array.length bucket_bounds) (fun _ -> { count = 0; ex = None });
  }

let bucket_of v =
  let n = Array.length bucket_bounds in
  let rec find i = if i >= n - 1 || v <= bucket_bounds.(i) then i else find (i + 1) in
  find 0

let observe t ~time ?span v =
  incr t.total;
  let b = t.cells.(bucket_of v) in
  b.count <- b.count + 1;
  let fresh = { ex_value = v; ex_time = time; ex_span = span } in
  match b.ex with
  | None -> b.ex <- Some fresh
  | Some old ->
      (* Worst-in-window: a bigger sample always wins; an aged-out
         exemplar loses to any fresh sample, so the retained evidence
         stays recent enough to resolve against a bounded ring. *)
      if v >= old.ex_value || time -. old.ex_time > t.window then b.ex <- Some fresh

let count t = !(t.total)

let buckets t =
  Array.to_list
    (Array.mapi (fun i b -> (bucket_bounds.(i), b.count, b.ex)) t.cells)

let worst t =
  Array.fold_left
    (fun best b ->
      match (best, b.ex) with
      | None, ex -> ex
      | best, None -> best
      | Some w, Some ex -> if ex.ex_value >= w.ex_value then Some ex else best)
    None t.cells

(* Floats render with 17 significant digits (round-trips every finite
   double), matching Event.to_json. *)
let jfloat f = Printf.sprintf "%.17g" f

let le_string bound = if bound = infinity then "+Inf" else jfloat bound

let exemplar_json e =
  Printf.sprintf {|{"value":%s,"time":%s%s}|} (jfloat e.ex_value) (jfloat e.ex_time)
    (match e.ex_span with None -> "" | Some s -> Printf.sprintf {|,"span":%d|} s)

let to_json t =
  let cells =
    List.filter_map
      (fun (bound, count, ex) ->
        if count = 0 then None
        else
          Some
            (Printf.sprintf {|{"le":"%s","count":%d%s}|} (le_string bound) count
               (match ex with
               | None -> ""
               | Some e -> Printf.sprintf {|,"exemplar":%s|} (exemplar_json e))))
      (buckets t)
  in
  "[" ^ String.concat "," cells ^ "]"
