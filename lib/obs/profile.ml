(* Simulated-time profiler over the event stream.

   Run slices have zero virtual duration (the engine only advances time
   between queue pops), so all of a fiber's lifetime is spent *waiting*,
   and the profiler's job is to classify those waits.  Each fiber
   alternates Run_begin/Run_end brackets; the park reason on Run_end
   (plus the fiber's outstanding-RPC count) classifies the wait interval
   that follows:

     Park_yield                    -> Runnable (ready, waiting for the scheduler)
     Park_sleep   & no RPC pending -> Sleep    (timer)
     Park_suspend & no RPC pending -> Blocked  (ivar/signal/mailbox)
     any park     & RPC pending    -> Rpc      (an issued call is in flight)

   The accounting rule: for every fiber,
     sleep + blocked + rpc + runnable = (end | profile stop) - spawn
   where "profile stop" is the timestamp of the last event seen. *)

type wait = Sleep | Blocked | Rpc | Runnable

let wait_label = function
  | Sleep -> "sleep"
  | Blocked -> "blocked"
  | Rpc -> "rpc"
  | Runnable -> "runnable"

type fiber = {
  fid : int;
  fname : string;
  spawned : float;
  mutable ended : float option;
  mutable crashed : bool;
  mutable slices : int;
  mutable wait_since : float option;
  mutable wait_kind : wait;
  mutable spans : (int * string) list;  (* innermost first *)
  mutable rpcs : int;
  mutable w_sleep : float;
  mutable w_blocked : float;
  mutable w_rpc : float;
  mutable w_runnable : float;
}

type opstat = { mutable calls : int; mutable total : float; mutable omax : float }

type t = {
  fibers : (int, fiber) Hashtbl.t;
  mutable current : fiber option;
  rpc_owner : (int, fiber) Hashtbl.t;
  span_owner : (int, fiber) Hashtbl.t;
  ops : (string, opstat) Hashtbl.t;
  folds : (string, float) Hashtbl.t;
  mutable events : int;
  mutable t_first : float;
  mutable t_last : float;
  mutable finished : bool;
}

let create () =
  {
    fibers = Hashtbl.create 64;
    current = None;
    rpc_owner = Hashtbl.create 64;
    span_owner = Hashtbl.create 64;
    ops = Hashtbl.create 64;
    folds = Hashtbl.create 64;
    events = 0;
    t_first = nan;
    t_last = nan;
    finished = false;
  }

let fiber_of t fid fname time =
  match Hashtbl.find_opt t.fibers fid with
  | Some f -> f
  | None ->
      (* Stream may start mid-run; treat first sight as the spawn. *)
      let f =
        {
          fid;
          fname;
          spawned = time;
          ended = None;
          crashed = false;
          slices = 0;
          wait_since = Some time;
          wait_kind = Runnable;
          spans = [];
          rpcs = 0;
          w_sleep = 0.0;
          w_blocked = 0.0;
          w_rpc = 0.0;
          w_runnable = 0.0;
        }
      in
      Hashtbl.replace t.fibers fid f;
      f

let add_wait f kind d =
  match kind with
  | Sleep -> f.w_sleep <- f.w_sleep +. d
  | Blocked -> f.w_blocked <- f.w_blocked +. d
  | Rpc -> f.w_rpc <- f.w_rpc +. d
  | Runnable -> f.w_runnable <- f.w_runnable +. d

(* Folded flamegraph stack: fiber name, active spans outer->inner, wait
   category leaf.  Only waits accumulate (slices are zero-width). *)
let fold_key f kind =
  String.concat ";"
    (f.fname :: List.rev_map snd f.spans @ [ wait_label kind ])

let close_wait t f until =
  match f.wait_since with
  | None -> ()
  | Some since ->
      let d = until -. since in
      f.wait_since <- None;
      add_wait f f.wait_kind d;
      if d > 0.0 then begin
        let key = fold_key f f.wait_kind in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.folds key) in
        Hashtbl.replace t.folds key (prev +. d)
      end

let open_wait f kind time =
  f.wait_since <- Some time;
  f.wait_kind <- kind

let handle t (e : Event.t) =
  if t.finished then invalid_arg "Profile.handle: profile already finished";
  t.events <- t.events + 1;
  if Float.is_nan t.t_first then t.t_first <- e.time;
  t.t_last <- e.time;
  match e.kind with
  | Event.Fiber_spawn { fid; fiber } -> ignore (fiber_of t fid fiber e.time)
  | Event.Run_begin { fid; fiber } ->
      let f = fiber_of t fid fiber e.time in
      close_wait t f e.time;
      f.slices <- f.slices + 1;
      t.current <- Some f
  | Event.Run_end { fid; fiber; park } ->
      let f = fiber_of t fid fiber e.time in
      t.current <- None;
      (match park with
      | Event.Park_done -> f.ended <- Some e.time
      | Event.Park_crash ->
          f.ended <- Some e.time;
          f.crashed <- true
      | Event.Park_yield -> open_wait f Runnable e.time
      | Event.Park_sleep _ ->
          open_wait f (if f.rpcs > 0 then Rpc else Sleep) e.time
      | Event.Park_suspend ->
          open_wait f (if f.rpcs > 0 then Rpc else Blocked) e.time)
  | Event.Rpc_call { id; _ } -> (
      match t.current with
      | None -> ()
      | Some f ->
          f.rpcs <- f.rpcs + 1;
          Hashtbl.replace t.rpc_owner id f)
  | Event.Rpc_done { id; _ } -> (
      match Hashtbl.find_opt t.rpc_owner id with
      | None -> ()
      | Some f ->
          f.rpcs <- f.rpcs - 1;
          Hashtbl.remove t.rpc_owner id)
  | Event.Span_start { span; name; _ } -> (
      match t.current with
      | None -> ()
      | Some f ->
          f.spans <- (span, name) :: f.spans;
          Hashtbl.replace t.span_owner span f)
  | Event.Span_end { span; name; dur; _ } -> (
      let stat =
        match Hashtbl.find_opt t.ops name with
        | Some s -> s
        | None ->
            let s = { calls = 0; total = 0.0; omax = 0.0 } in
            Hashtbl.replace t.ops name s;
            s
      in
      stat.calls <- stat.calls + 1;
      stat.total <- stat.total +. dur;
      stat.omax <- Float.max stat.omax dur;
      match Hashtbl.find_opt t.span_owner span with
      | None -> ()
      | Some f ->
          f.spans <- List.filter (fun (id, _) -> id <> span) f.spans;
          Hashtbl.remove t.span_owner span)
  | _ -> ()

let sink t = handle t

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if not (Float.is_nan t.t_last) then
      Hashtbl.iter (fun _ f -> close_wait t f t.t_last) t.fibers
  end

let of_events events =
  let t = create () in
  List.iter (handle t) events;
  finish t;
  t

let events t = t.events

let span t =
  if Float.is_nan t.t_first then (0.0, 0.0) else (t.t_first, t.t_last)

(* --- views ---------------------------------------------------------- *)

type fiber_info = {
  i_fid : int;
  i_name : string;
  i_spawned : float;
  i_ended : float option;
  i_crashed : bool;
  i_slices : int;
  i_sleep : float;
  i_blocked : float;
  i_rpc : float;
  i_runnable : float;
}

type op_info = { o_name : string; o_calls : int; o_total : float; o_max : float }

let fiber_infos t =
  finish t;
  Hashtbl.fold
    (fun _ f acc ->
      {
        i_fid = f.fid;
        i_name = f.fname;
        i_spawned = f.spawned;
        i_ended = f.ended;
        i_crashed = f.crashed;
        i_slices = f.slices;
        i_sleep = f.w_sleep;
        i_blocked = f.w_blocked;
        i_rpc = f.w_rpc;
        i_runnable = f.w_runnable;
      }
      :: acc)
    t.fibers []
  |> List.sort (fun a b -> compare a.i_fid b.i_fid)

let op_infos t =
  finish t;
  Hashtbl.fold
    (fun name s acc ->
      { o_name = name; o_calls = s.calls; o_total = s.total; o_max = s.omax } :: acc)
    t.ops []
  |> List.sort (fun a b -> compare a.o_name b.o_name)

let folded t =
  finish t;
  let lines =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.folds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s %.6f\n" k v))
    lines;
  Buffer.contents buf

(* --- deterministic JSON --------------------------------------------- *)

let jfloat f = Printf.sprintf "%.17g" f

let to_json t =
  finish t;
  let start, stop = span t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"schema":"weakset-profile-v1","start":%s,"stop":%s,"events":%d,"fibers":[|}
       (jfloat start) (jfloat stop) t.events);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"fid":%d,"name":%s,"spawned":%s,"ended":%s,"crashed":%b,"slices":%d,"sleep":%s,"blocked":%s,"rpc":%s,"runnable":%s}|}
           f.i_fid
           ("\"" ^ Event.json_escape f.i_name ^ "\"")
           (jfloat f.i_spawned)
           (match f.i_ended with None -> "null" | Some e -> jfloat e)
           f.i_crashed f.i_slices (jfloat f.i_sleep) (jfloat f.i_blocked)
           (jfloat f.i_rpc) (jfloat f.i_runnable)))
    (fiber_infos t);
  Buffer.add_string buf {|],"ops":[|};
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"op":%s,"calls":%d,"total":%s,"max":%s}|}
           ("\"" ^ Event.json_escape o.o_name ^ "\"")
           o.o_calls (jfloat o.o_total) (jfloat o.o_max)))
    (op_infos t);
  Buffer.add_string buf {|],"folded":[|};
  let folds =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.folds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"stack":%s,"value":%s}|}
           ("\"" ^ Event.json_escape k ^ "\"")
           (jfloat v)))
    folds;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- top-k tables ---------------------------------------------------- *)

(* Fibers aggregate by display name (all rpc-handler-* instances of one
   node fold together only if identically named; engine names are unique
   per instance, so this mostly groups logical roles). *)
let render_top ?(k = 10) t =
  finish t;
  let start, stop = span t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "profile: %d events, %d fibers, %d ops, span %.2f .. %.2f\n"
       t.events (Hashtbl.length t.fibers) (Hashtbl.length t.ops) start stop);
  let agg = Hashtbl.create 32 in
  List.iter
    (fun f ->
      let key = f.i_name in
      let n, sl, bl, rp, ru =
        Option.value ~default:(0, 0.0, 0.0, 0.0, 0.0) (Hashtbl.find_opt agg key)
      in
      Hashtbl.replace agg key
        (n + 1, sl +. f.i_sleep, bl +. f.i_blocked, rp +. f.i_rpc, ru +. f.i_runnable))
    (fiber_infos t);
  let fibers =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []
    |> List.sort (fun (na, (_, sa, ba, ra, ua)) (nb, (_, sb, bb, rb, ub)) ->
           let ta = sa +. ba +. ra +. ua and tb = sb +. bb +. rb +. ub in
           if ta <> tb then compare tb ta else compare na nb)
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  Buffer.add_string buf
    (Printf.sprintf "top %d fibers by waited time\n  %-28s %5s %10s %10s %10s %10s %10s\n"
       k "fiber" "n" "sleep" "blocked" "rpc" "runnable" "total");
  List.iter
    (fun (name, (n, sl, bl, rp, ru)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %5d %10.2f %10.2f %10.2f %10.2f %10.2f\n" name n sl bl
           rp ru
           (sl +. bl +. rp +. ru)))
    (take k fibers);
  let ops =
    op_infos t
    |> List.sort (fun a b ->
           if a.o_total <> b.o_total then compare b.o_total a.o_total
           else compare a.o_name b.o_name)
  in
  Buffer.add_string buf
    (Printf.sprintf "top %d ops by span time\n  %-28s %7s %10s %10s %10s\n" k "op"
       "calls" "total" "mean" "max");
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %7d %10.2f %10.2f %10.2f\n" o.o_name o.o_calls o.o_total
           (o.o_total /. float_of_int (max 1 o.o_calls))
           o.o_max))
    (take k ops);
  Buffer.contents buf
