(** Simulated-time profiler: attributes each fiber's virtual lifetime to
    wait categories, from the bus event stream alone.

    {2 Accounting model}

    Fiber run slices have zero virtual duration — the engine only
    advances time between event-queue pops — so all of a fiber's
    lifetime is waiting, and the profiler classifies those waits using
    the [Run_end] park reason plus the fiber's outstanding-RPC count:

    - {!Runnable}: parked by [yield] (ready, waiting its turn);
    - {!Sleep}: parked by a timer with no RPC in flight;
    - {!Blocked}: parked on an ivar/signal/mailbox with no RPC in flight;
    - {!Rpc}: parked (any reason) while at least one RPC issued by this
      fiber is still in flight.

    Invariant (checked by tests): for every fiber,
    [sleep + blocked + rpc + runnable = (end time | profile stop) -
    spawn time], where the profile stop is the time of the last event
    seen.  The profiler assumes a single engine per bus (one run slice
    active at a time). *)

type t

(** Wait categories, in the sense of the accounting model above. *)
type wait = Sleep | Blocked | Rpc | Runnable

val wait_label : wait -> string

val create : unit -> t

(** Feed one event.  Raises [Invalid_argument] after {!finish}. *)
val handle : t -> Event.t -> unit

(** [sink t] is [handle t], for [Bus.attach]. *)
val sink : t -> Bus.sink

(** Close the open wait of every live fiber at the last event time.
    Idempotent; implied by every view below. *)
val finish : t -> unit

(** Build a finished profile from a recorded stream. *)
val of_events : Event.t list -> t

(** Number of events seen. *)
val events : t -> int

(** [(first, last)] event timestamps ([0., 0.] if no events). *)
val span : t -> float * float

type fiber_info = {
  i_fid : int;
  i_name : string;
  i_spawned : float;
  i_ended : float option;  (** [None]: still live at profile stop *)
  i_crashed : bool;
  i_slices : int;          (** number of run slices *)
  i_sleep : float;
  i_blocked : float;
  i_rpc : float;
  i_runnable : float;
}

type op_info = { o_name : string; o_calls : int; o_total : float; o_max : float }

(** Per-fiber attribution, sorted by fiber id. *)
val fiber_infos : t -> fiber_info list

(** Per-op (span name) totals, sorted by name. *)
val op_infos : t -> op_info list

(** Folded-stack flamegraph text: one
    ["fiber;span;...;category value\n"] line per stack, sorted, where
    the leaf is the wait category and value is attributed virtual time. *)
val folded : t -> string

(** Deterministic JSON ([%.17g] floats, sorted arrays): byte-identical
    across same-seed runs. *)
val to_json : t -> string

(** Human-readable top-[k] hot-fiber (aggregated by name) and hot-op
    tables. *)
val render_top : ?k:int -> t -> string
