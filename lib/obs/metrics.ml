type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Histograms hold a deterministic fixed-capacity reservoir instead of
   every sample: below [reservoir_capacity] percentiles are exact; above
   it the retained set is decimated by insertion index (sample [i] is
   kept iff [i mod stride = 0], stride doubling whenever the buffer
   fills) — a uniform-by-index subsample that is a pure function of the
   sample stream, so seed-identical runs keep identical reservoirs.
   Count and sum stay exact regardless.  Memory is O(capacity) however
   long the run. *)
let reservoir_capacity = 512

type histogram = {
  kept : float array; (* retained samples, insertion order, first klen live *)
  mutable klen : int;
  mutable stride : int; (* admit every stride-th observation *)
  mutable n : int;
  mutable sum : float;
  mutable sorted : float array option; (* cache, invalidated on observe *)
  ex : Exemplar.t; (* worst-in-window exemplar per latency bucket *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string, instrument) Hashtbl.t;
  mutable next_instance : int;
}

let create () = { table = Hashtbl.create 64; next_instance = 0 }

let fresh_instance t =
  let i = t.next_instance in
  t.next_instance <- i + 1;
  i

(* Key = name{k=v,...} with labels sorted, so intern order never matters. *)
let key name labels =
  match labels with
  | [] -> name
  | ls ->
      let ls = List.sort (fun (a, _) (b, _) -> compare a b) ls in
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

let intern t name labels make wrap unwrap what =
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some inst -> (
      match unwrap inst with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Metrics: %s is not a %s" k what))
  | None ->
      let x = make () in
      Hashtbl.replace t.table k (wrap x);
      x

let counter t ?(labels = []) name =
  intern t name labels
    (fun () -> { c = 0 })
    (fun c -> Counter c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let inc ?(by = 1) c = c.c <- c.c + by
let value c = c.c

let peek_counter t ?(labels = []) name =
  match Hashtbl.find_opt t.table (key name labels) with
  | Some (Counter c) -> c.c
  | _ -> 0

let gauge t ?(labels = []) name =
  intern t name labels
    (fun () -> { g = 0.0 })
    (fun g -> Gauge g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram t ?(labels = []) name =
  intern t name labels
    (fun () ->
      {
        kept = Array.make reservoir_capacity 0.0;
        klen = 0;
        stride = 1;
        n = 0;
        sum = 0.0;
        sorted = None;
        ex = Exemplar.create ();
      })
    (fun h -> Histogram h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

(* Halve the reservoir in place: the live entries hold original indices
   0, stride, 2*stride, …; keeping every other one leaves exactly the
   multiples of the doubled stride. *)
let compact h =
  let j = ref 0 in
  let i = ref 0 in
  while !i < h.klen do
    h.kept.(!j) <- h.kept.(!i);
    incr j;
    i := !i + 2
  done;
  h.klen <- !j;
  h.stride <- h.stride * 2

let observe h v =
  let idx = h.n in
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if idx mod h.stride = 0 then begin
    if h.klen = Array.length h.kept then compact h;
    (* compaction doubled the stride; re-test admission under it *)
    if idx mod h.stride = 0 then begin
      h.kept.(h.klen) <- v;
      h.klen <- h.klen + 1;
      h.sorted <- None
    end
  end

(* Latency sample with forensic back-pointers: in addition to the
   reservoir, record (time, span) into the histogram's exemplar table so
   a p99 in a dump can name the one trace that caused it. *)
let observe_ex h ~time ?span v =
  observe h v;
  Exemplar.observe h.ex ~time ?span v

let h_count h = h.n
let h_sum h = h.sum
let h_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let h_retained h = h.klen
let h_exemplars h = h.ex

let sorted_samples h =
  match h.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub h.kept 0 h.klen in
      Array.sort compare a;
      h.sorted <- Some a;
      a

let h_percentile h p =
  if h.n = 0 then invalid_arg "Metrics.h_percentile: empty";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Metrics.h_percentile: p out of range";
  let a = sorted_samples h in
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let frac = rank -. float_of_int lo in
    if lo >= n - 1 then a.(n - 1)
    else (a.(lo) *. (1.0 -. frac)) +. (a.(lo + 1) *. frac)

(* Total-function percentile: a histogram that only ever saw shed
   (never-latency-recorded) traffic has an empty reservoir, and the
   caller gets [None] instead of a phantom value or a raise. *)
let h_percentile_opt h p =
  if h.n = 0 || h.klen = 0 then None else Some (h_percentile h p)

let sorted_entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, inst) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":|} (json_escape k));
      match inst with
      | Counter c -> Buffer.add_string buf (string_of_int c.c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%.9g" g.g)
      | Histogram h ->
          if h.n = 0 then
            Buffer.add_string buf {|{"count":0,"sum":0,"mean":0}|}
          else begin
            Buffer.add_string buf
              (Printf.sprintf
                 {|{"count":%d,"sum":%.9g,"mean":%.9g,"p50":%.9g,"p95":%.9g,"p99":%.9g,"retained":%d|}
                 h.n h.sum (h_mean h) (h_percentile h 50.0)
                 (h_percentile h 95.0) (h_percentile h 99.0) h.klen);
            if Exemplar.count h.ex > 0 then
              Buffer.add_string buf
                (Printf.sprintf {|,"exemplars":%s|} (Exemplar.to_json h.ex));
            Buffer.add_char buf '}'
          end)
    (sorted_entries t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp fmt t =
  List.iter
    (fun (k, inst) ->
      match inst with
      | Counter c -> Format.fprintf fmt "%s = %d@." k c.c
      | Gauge g -> Format.fprintf fmt "%s = %g@." k g.g
      | Histogram h ->
          if h.n = 0 then Format.fprintf fmt "%s = (empty)@." k
          else
            Format.fprintf fmt "%s = n=%d mean=%g p95=%g@." k h.n (h_mean h)
              (h_percentile h 95.0))
    (sorted_entries t)
