type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  mutable samples : float list; (* reverse insertion order *)
  mutable n : int;
  mutable sum : float;
  mutable sorted : float array option; (* cache, invalidated on observe *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string, instrument) Hashtbl.t;
  mutable next_instance : int;
}

let create () = { table = Hashtbl.create 64; next_instance = 0 }

let fresh_instance t =
  let i = t.next_instance in
  t.next_instance <- i + 1;
  i

(* Key = name{k=v,...} with labels sorted, so intern order never matters. *)
let key name labels =
  match labels with
  | [] -> name
  | ls ->
      let ls = List.sort (fun (a, _) (b, _) -> compare a b) ls in
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

let intern t name labels make wrap unwrap what =
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some inst -> (
      match unwrap inst with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Metrics: %s is not a %s" k what))
  | None ->
      let x = make () in
      Hashtbl.replace t.table k (wrap x);
      x

let counter t ?(labels = []) name =
  intern t name labels
    (fun () -> { c = 0 })
    (fun c -> Counter c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let inc ?(by = 1) c = c.c <- c.c + by
let value c = c.c

let peek_counter t ?(labels = []) name =
  match Hashtbl.find_opt t.table (key name labels) with
  | Some (Counter c) -> c.c
  | _ -> 0

let gauge t ?(labels = []) name =
  intern t name labels
    (fun () -> { g = 0.0 })
    (fun g -> Gauge g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram t ?(labels = []) name =
  intern t name labels
    (fun () -> { samples = []; n = 0; sum = 0.0; sorted = None })
    (fun h -> Histogram h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let observe h v =
  h.samples <- v :: h.samples;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  h.sorted <- None

let h_count h = h.n
let h_sum h = h.sum
let h_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let sorted_samples h =
  match h.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list h.samples in
      Array.sort compare a;
      h.sorted <- Some a;
      a

let h_percentile h p =
  if h.n = 0 then invalid_arg "Metrics.h_percentile: empty";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Metrics.h_percentile: p out of range";
  let a = sorted_samples h in
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let frac = rank -. float_of_int lo in
    if lo >= n - 1 then a.(n - 1)
    else (a.(lo) *. (1.0 -. frac)) +. (a.(lo + 1) *. frac)

let sorted_entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, inst) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":|} (json_escape k));
      match inst with
      | Counter c -> Buffer.add_string buf (string_of_int c.c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%.9g" g.g)
      | Histogram h ->
          if h.n = 0 then
            Buffer.add_string buf {|{"count":0,"sum":0,"mean":0}|}
          else
            Buffer.add_string buf
              (Printf.sprintf
                 {|{"count":%d,"sum":%.9g,"mean":%.9g,"p50":%.9g,"p95":%.9g,"p99":%.9g}|}
                 h.n h.sum (h_mean h) (h_percentile h 50.0)
                 (h_percentile h 95.0) (h_percentile h 99.0)))
    (sorted_entries t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp fmt t =
  List.iter
    (fun (k, inst) ->
      match inst with
      | Counter c -> Format.fprintf fmt "%s = %d@." k c.c
      | Gauge g -> Format.fprintf fmt "%s = %g@." k g.g
      | Histogram h ->
          if h.n = 0 then Format.fprintf fmt "%s = (empty)@." k
          else
            Format.fprintf fmt "%s = n=%d mean=%g p95=%g@." k h.n (h_mean h)
              (h_percentile h 95.0))
    (sorted_entries t)
