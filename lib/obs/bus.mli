(** The event bus: where every subsystem publishes its {!Event.t}s.

    A bus owns the event sequence counter, a {!Metrics.t} registry, and a
    list of named sinks.  With no sinks attached, {!emit} is a cheap
    no-op — components can emit unconditionally on hot paths and pay
    only when someone is listening.  Sinks are called synchronously in
    attach order, so a deterministic simulation produces a deterministic
    event stream. *)

type t

(** A sink receives every event published after it is attached. *)
type sink = Event.t -> unit

(** [create ()] makes a bus with a fresh metrics registry (or the one
    given). *)
val create : ?metrics:Metrics.t -> unit -> t

val metrics : t -> Metrics.t

(** [attach t ~name sink] registers [sink]; a later [attach] with the
    same name replaces it. *)
val attach : t -> name:string -> sink -> unit

val detach : t -> name:string -> unit

(** [enabled]/[set_enabled]: master switch; when off, [emit] drops
    events (metrics are unaffected). *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool

(** [emit t ~time kind] stamps the event with the next sequence number
    and fans it out to all sinks.  No-op when disabled or no sinks. *)
val emit : t -> time:float -> Event.kind -> unit

(** Number of events emitted so far (= next sequence number). *)
val seq : t -> int

(** {1 Spans} *)

(** Fresh span id, unique within this bus. *)
val fresh_span : t -> int

(** [with_span t ~time ?node ?parent name f] emits [Span_start], runs
    [f ()], then emits [Span_end] with the elapsed virtual time — also
    when [f] raises (the exception is re-raised).  [time] is called at
    entry and exit, so pass [fun () -> Engine.now eng].  [parent] links
    this span under an enclosing one in the reconstructed trace tree.
    Skips event emission entirely when the bus has no sinks. *)
val with_span :
  t -> time:(unit -> float) -> ?node:int -> ?parent:int -> string -> (unit -> 'a) -> 'a

(** Like {!with_span}, but [f] receives the span's id so it can thread
    it further down as the [parent] of nested spans, RPC calls, or store
    operations.  The id is allocated (and the counter advanced) even
    when no sink is attached, so span-id sequences do not depend on who
    is listening. *)
val with_span_id :
  t -> time:(unit -> float) -> ?node:int -> ?parent:int -> string -> (int -> 'a) -> 'a
