(** Live SLO tracking with error-budget burn-rate alerts.

    An {!objective} watches one op (a span name, e.g. ["client.fetch"]):
    a completed span is {e good} iff its duration is at most
    [max_latency].  Over a rolling window of virtual time the error
    rate is divided by the error budget [1 - target], giving the burn
    rate: burn 1 means the budget is consumed exactly as provisioned,
    burn 4 means four times too fast.

    Alerts latch: one {!Event.Alert} is published on the upward crossing
    of the warn threshold (severity [Sev_crit] if the crit threshold is
    also crossed), and the objective re-arms once burn falls back below
    warn.  Nothing fires before [min_samples] samples are in the window,
    so a single slow first request cannot page.

    {b Empty windows mid-run are explicit, not silent.}  When the
    rolling window empties — every sample older than [window] has been
    evicted and nothing new completed — the burn rate of the last
    non-empty window is {e carried forward}: a latched alert stays
    latched and {!tick} keeps judging with the carried value.  This is
    deliberate: under overload the system may stop completing requests
    entirely, which is the {e worst} state, and treating "no data" as
    "no errors" would disarm the alert exactly when it matters most.
    The carried burn only starts being judged once some window has ever
    reached [min_samples], so ticking before any traffic cannot page.
    Recovery is therefore only observed through completed requests: once
    traffic completes again, the window refills and burn is recomputed
    from real samples. *)

type t

type objective = {
  op : string;           (** span name to watch *)
  max_latency : float;   (** a span this slow (or slower) is an error *)
  target : float;        (** required good fraction, in (0, 1) *)
  window : float;        (** rolling window length, virtual time *)
}

(** [create ?bus ?min_samples ?warn_burn ?crit_burn objectives] — when
    [bus] is given, alerts are published back onto it (the tracker is
    typically also attached to that same bus; re-entrant emits are safe
    because sinks are called synchronously and [Alert] triggers no
    further alerts).  Defaults: [min_samples = 5], [warn_burn = 1.0],
    [crit_burn = 4.0].  Raises [Invalid_argument] on an empty list or
    out-of-range targets/windows. *)
val create :
  ?bus:Bus.t ->
  ?min_samples:int ->
  ?warn_burn:float ->
  ?crit_burn:float ->
  objective list ->
  t

(** Feed one event (only [Span_end] matters). *)
val handle : t -> Event.t -> unit

(** [sink t] is [handle t], for [Bus.attach]. *)
val sink : t -> Bus.sink

(** [tick t ~time] re-evaluates every objective at [time] without a new
    sample: the window is evicted up to [time] and burn is recomputed —
    or, if the window is now empty, the last non-empty window's burn is
    carried forward (see the module header).  Drive this from a
    metronome fiber so overload that starves completions still raises
    (and sustains) alerts. *)
val tick : t -> time:float -> unit

(** [burn_rate t ~op] is the burn rate as of the most recent
    {!handle}d sample or {!tick} for [op]'s objective — the carried
    value if the window is empty — or [None] for an unknown op. *)
val burn_rate : t -> op:string -> float option

(** Alert kinds fired so far, oldest first. *)
val alerts : t -> Event.kind list

val alert_count : t -> int

(** Deterministic per-objective summary table. *)
val report : t -> string
