(** Live SLO tracking with error-budget burn-rate alerts.

    An {!objective} watches one op (a span name, e.g. ["client.fetch"]):
    a completed span is {e good} iff its duration is at most
    [max_latency].  Over a rolling window of virtual time the error
    rate is divided by the error budget [1 - target], giving the burn
    rate: burn 1 means the budget is consumed exactly as provisioned,
    burn 4 means four times too fast.

    Alerts latch: one {!Event.Alert} is published on the upward crossing
    of the warn threshold (severity [Sev_crit] if the crit threshold is
    also crossed), and the objective re-arms once burn falls back below
    warn.  Nothing fires before [min_samples] samples are in the window,
    so a single slow first request cannot page. *)

type t

type objective = {
  op : string;           (** span name to watch *)
  max_latency : float;   (** a span this slow (or slower) is an error *)
  target : float;        (** required good fraction, in (0, 1) *)
  window : float;        (** rolling window length, virtual time *)
}

(** [create ?bus ?min_samples ?warn_burn ?crit_burn objectives] — when
    [bus] is given, alerts are published back onto it (the tracker is
    typically also attached to that same bus; re-entrant emits are safe
    because sinks are called synchronously and [Alert] triggers no
    further alerts).  Defaults: [min_samples = 5], [warn_burn = 1.0],
    [crit_burn = 4.0].  Raises [Invalid_argument] on an empty list or
    out-of-range targets/windows. *)
val create :
  ?bus:Bus.t ->
  ?min_samples:int ->
  ?warn_burn:float ->
  ?crit_burn:float ->
  objective list ->
  t

(** Feed one event (only [Span_end] matters). *)
val handle : t -> Event.t -> unit

(** [sink t] is [handle t], for [Bus.attach]. *)
val sink : t -> Bus.sink

(** Alert kinds fired so far, oldest first. *)
val alerts : t -> Event.kind list

val alert_count : t -> int

(** Deterministic per-objective summary table. *)
val report : t -> string
