(* Rolling-window latency SLOs with burn-rate alerting.

   Each objective watches one op (span name): a completed span is
   "good" iff its duration is within [max_latency].  Over a rolling
   window of virtual time the error rate is compared against the error
   budget (1 - target); the ratio is the burn rate.  Burn >= 1 means the
   budget is being consumed exactly as fast as it is provisioned; an
   alert latches on the upward crossing of the warn threshold and
   re-arms once burn drops back below it, so a sustained breach emits
   one Alert, not one per sample. *)

type objective = {
  op : string;
  max_latency : float;
  target : float;  (* required good fraction, e.g. 0.99 *)
  window : float;  (* rolling window, virtual time *)
}

type tracked = {
  obj : objective;
  samples : (float * bool) Queue.t;  (* (time, good), oldest first *)
  mutable bad_in_window : int;
  mutable seen : int;       (* lifetime sample count *)
  mutable bad_total : int;
  mutable worst_burn : float;
  mutable alerting : bool;
  mutable alerts : int;
  mutable last_burn : float;  (* burn of the last window with samples *)
  mutable gated : bool;       (* a window ever reached min_samples *)
}

type t = {
  bus : Bus.t option;
  min_samples : int;
  warn_burn : float;
  crit_burn : float;
  objectives : tracked list;  (* in creation order *)
  by_op : (string, tracked) Hashtbl.t;
  mutable alert_log : Event.kind list;  (* newest first *)
}

let budget obj = 1.0 -. obj.target

let create ?bus ?(min_samples = 5) ?(warn_burn = 1.0) ?(crit_burn = 4.0) objectives =
  if objectives = [] then invalid_arg "Slo.create: no objectives";
  List.iter
    (fun o ->
      if o.target <= 0.0 || o.target >= 1.0 then
        invalid_arg "Slo.create: target must be in (0, 1)";
      if o.window <= 0.0 then invalid_arg "Slo.create: window must be positive")
    objectives;
  let objectives =
    List.map
      (fun obj ->
        {
          obj;
          samples = Queue.create ();
          bad_in_window = 0;
          seen = 0;
          bad_total = 0;
          worst_burn = 0.0;
          alerting = false;
          alerts = 0;
          last_burn = 0.0;
          gated = false;
        })
      objectives
  in
  let by_op = Hashtbl.create 8 in
  List.iter (fun tr -> Hashtbl.replace by_op tr.obj.op tr) objectives;
  { bus; min_samples; warn_burn; crit_burn; objectives; by_op; alert_log = [] }

let evict tr now =
  let horizon = now -. tr.obj.window in
  let continue_evict = ref true in
  while !continue_evict do
    match Queue.peek_opt tr.samples with
    | Some (time, good) when time < horizon ->
        ignore (Queue.pop tr.samples);
        if not good then tr.bad_in_window <- tr.bad_in_window - 1
    | _ -> continue_evict := false
  done

(* Latch/re-arm evaluation shared by [observe] and [tick].  [n] is the
   window population [burn] was computed from.  An empty window (n = 0)
   is judged with the carried-forward burn of the last non-empty window
   — under overload the system may stop completing requests entirely,
   and an empty window must not silently disarm a latched alert — but
   only once some window has ever reached [min_samples] ([gated]), so a
   tick before any traffic cannot page. *)
let judge t tr ~time ~n ~burn =
  tr.worst_burn <- Float.max tr.worst_burn burn;
  if n >= t.min_samples then tr.gated <- true;
  if n >= t.min_samples || (n = 0 && tr.gated) then
    if burn >= t.warn_burn then begin
      if not tr.alerting then begin
        tr.alerting <- true;
        tr.alerts <- tr.alerts + 1;
        let severity =
          if burn >= t.crit_burn then Event.Sev_crit else Event.Sev_warn
        in
        let kind =
          Event.Alert
            {
              source = "slo";
              op = tr.obj.op;
              severity;
              burn;
              window = tr.obj.window;
              detail =
                Printf.sprintf "err=%d/%d target=%g max_latency=%g" tr.bad_in_window n
                  tr.obj.target tr.obj.max_latency;
            }
        in
        t.alert_log <- kind :: t.alert_log;
        match t.bus with None -> () | Some bus -> Bus.emit bus ~time kind
      end
    end
    else tr.alerting <- false

let observe t tr ~time ~dur =
  let good = dur <= tr.obj.max_latency in
  tr.seen <- tr.seen + 1;
  if not good then tr.bad_total <- tr.bad_total + 1;
  Queue.push (time, good) tr.samples;
  if not good then tr.bad_in_window <- tr.bad_in_window + 1;
  evict tr time;
  let n = Queue.length tr.samples in
  let error_rate = float_of_int tr.bad_in_window /. float_of_int n in
  let burn = error_rate /. budget tr.obj in
  tr.last_burn <- burn;
  judge t tr ~time ~n ~burn

let tick t ~time =
  List.iter
    (fun tr ->
      evict tr time;
      let n = Queue.length tr.samples in
      let burn =
        if n = 0 then tr.last_burn
        else begin
          let b = float_of_int tr.bad_in_window /. float_of_int n /. budget tr.obj in
          tr.last_burn <- b;
          b
        end
      in
      judge t tr ~time ~n ~burn)
    t.objectives

let burn_rate t ~op =
  Option.map (fun tr -> tr.last_burn) (Hashtbl.find_opt t.by_op op)

let handle t (e : Event.t) =
  match e.kind with
  | Event.Span_end { name; dur; _ } -> (
      match Hashtbl.find_opt t.by_op name with
      | None -> ()
      | Some tr -> observe t tr ~time:e.time ~dur)
  | _ -> ()

let sink t = handle t

let alerts t = List.rev t.alert_log

let alert_count t = List.length t.alert_log

(* --- deterministic report ------------------------------------------- *)

let report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "slo report (warn>=%.2fx burn, crit>=%.2fx, min %d samples)\n"
       t.warn_burn t.crit_burn t.min_samples);
  Buffer.add_string buf
    (Printf.sprintf "  %-28s %9s %8s %8s %7s %7s %10s %7s\n" "op" "max_lat" "target"
       "window" "n" "bad" "worst_burn" "alerts");
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %9.2f %8.3f %8.1f %7d %7d %10.2f %7d%s\n" tr.obj.op
           tr.obj.max_latency tr.obj.target tr.obj.window tr.seen tr.bad_total
           tr.worst_burn tr.alerts
           (if tr.alerting then "  [ALERTING]" else "")))
    t.objectives;
  Buffer.contents buf
