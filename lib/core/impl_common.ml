module Client = Weakset_store.Client
module Oid = Weakset_store.Oid
module Topology = Weakset_net.Topology
module Engine = Weakset_sim.Engine
module Signal = Weakset_sim.Signal

type ctx = {
  client : Client.t;
  sref : Weakset_store.Protocol.set_ref;
  instrument : Instrument.t option;
  heal_signal : Signal.t option;
  retry_backoff : float;
  lock_timeout : float;
  max_fetch_attempts : int;
}

let make_ctx ?instrument ?heal_signal ?(retry_backoff = 1.0) ?(lock_timeout = 600.0)
    ?(max_fetch_attempts = 5) client sref =
  { client; sref; instrument; heal_signal; retry_backoff; lock_timeout; max_fetch_attempts }

let planted_grow_only_drop = ref false

let engine ctx = Client.engine ctx.client

let pick_reachable ctx candidates =
  let topo = Client.topology ctx.client in
  let me = Client.node ctx.client in
  let better (oid, lat) (boid, blat) = lat < blat || (lat = blat && Oid.num oid < Oid.num boid) in
  Oid.Set.fold
    (fun oid best ->
      match Topology.path_latency topo me (Oid.home oid) with
      | None -> best
      | Some lat -> (
          match best with
          | Some b when not (better (oid, lat) b) -> best
          | Some _ | None -> Some (oid, lat)))
    candidates None
  |> Option.map fst

let signal_generation ctx =
  match ctx.heal_signal with Some s -> Signal.generation s | None -> 0

let wait_for_change ctx ~seen_generation =
  let eng = engine ctx in
  match ctx.heal_signal with
  | Some s ->
      (* Avoid the lost-wakeup race: only park if nothing changed since the
         caller sampled the generation. *)
      if Signal.generation s = seen_generation then Signal.wait eng s
  | None -> Engine.sleep eng ctx.retry_backoff

let inst_detach ctx = Option.iter Instrument.detach ctx.instrument

let inst_first ?version ?linearised ctx =
  Option.iter (Instrument.observe_first ?version ?linearised) ctx.instrument

let inst_started ctx = Option.iter Instrument.invocation_started ctx.instrument

let inst_retry ?version ?linearised ctx =
  Option.iter (Instrument.invocation_retry ?version ?linearised) ctx.instrument

let inst_completed ctx term =
  Option.iter (fun i -> Instrument.invocation_completed i term) ctx.instrument

let inst_yield ctx oid = inst_completed ctx (Instrument.suspends oid)
