(** Linearizable snapshot iterator (arXiv:1705.08885): the fifth design
    point.

    The first call pins the directory at one version with an
    authoritative uncached read; every later invocation re-derives the
    pinned membership with a snapshot-at-version read
    ([Protocol.Dir_read_at]), so concurrent mutation can never change
    what the iterator yields.  No locks anywhere — the coordinator's
    mutation log below the pinned version is immutable, which is all
    the read needs.  On any failure the invocation blocks until repair
    (never signals); the run linearizes at the pin read, satisfying
    [Figures.lin]: yields ⊆ s_σ and the returned set equals s_σ. *)

val open_ : Impl_common.ctx -> Iterator.t
