module Client = Weakset_store.Client
module Node_server = Weakset_store.Node_server
module Directory = Weakset_store.Directory
module Oid = Weakset_store.Oid
module Engine = Weakset_sim.Engine
module Spec = Weakset_spec

module Version = Weakset_store.Version

type t = {
  client : Client.t;
  server : Node_server.t;
  set_id : int;
  monitor : Spec.Monitor.t;
  mutable universe : Oid.Set.t; (* every oid ever observed as a member *)
  mutable history : (Version.t * Oid.Set.t) list; (* membership per version, newest first *)
  mutable unhook : unit -> unit;
}

let elem_of_oid oid = Spec.Elem.make ~label:(Oid.to_string oid) (Oid.num oid)

let to_eset oids = Oid.Set.fold (fun o acc -> Spec.Elem.Set.add (elem_of_oid o) acc) oids Spec.Elem.Set.empty

let now t = Engine.now (Client.engine t.client)

let truth t = Directory.members (Node_server.directory_truth t.server ~set_id:t.set_id)

(* The paper's reachable(): which ever-member elements are accessible from
   the client's node in the current state.

   [linearised] is the member list an implementation's membership read
   actually delivered.  When given it becomes the recorded [s]: a
   mutation that lands while the reply is in flight would otherwise make
   the coordinator's directory diverge from the view the implementation
   linearised on, and the monitor would judge the decision against a
   state it never saw.

   [version] is the directory version the reply carried.  Since the type
   constraint no longer scans these views (see Constraint_clause), a
   read path that corrupts membership would go unnoticed — so the
   instrument cross-checks the view against its own per-version record of
   the directory, which is exact: a serve returns precisely the
   directory at its version. *)
exception Corrupt_view of string

let membership_at t version =
  Option.map snd (List.find_opt (fun (v, _) -> Version.equal v version) t.history)

let verify_view t version members =
  match List.find_opt (fun (v, _) -> Version.equal v version) t.history with
  | None -> () (* version predates this instrument's attachment *)
  | Some (_, recorded) ->
      if not (Oid.Set.equal members recorded) then
        raise
          (Corrupt_view
             (Format.asprintf "instrument: membership reply diverges from directory@%a"
                Version.pp version))

let capture ?version ?linearised t =
  let members =
    match linearised with
    | Some m ->
        Option.iter (fun v -> verify_view t v m) version;
        m
    | None -> truth t
  in
  t.universe <- Oid.Set.union t.universe members;
  let accessible = Client.reachable_oids t.client t.universe in
  (to_eset members, to_eset accessible)

let mutation_op = function
  | Directory.Add o -> Spec.Sstate.Madd (elem_of_oid o)
  | Directory.Remove o -> Spec.Sstate.Mremove (elem_of_oid o)

(* Besides driving the monitor directly, every capture is published as a
   [Spec_observe] event so Spec.Monitor_adapter can rebuild the same
   computation from a recorded trace. *)
let event_elem e =
  { Weakset_obs.Event.elem_id = Spec.Elem.id e; elem_label = Spec.Elem.label e }

let event_elems es = List.map event_elem (Spec.Elem.Set.elements es)

let emit_observe t phase s accessible =
  let eng = Client.engine t.client in
  Weakset_obs.Bus.emit (Engine.bus eng) ~time:(Engine.now eng)
    (Weakset_obs.Event.Spec_observe
       {
         set_id = t.set_id;
         phase;
         s = event_elems s;
         accessible = event_elems accessible;
       })

let attach ~client ~server ~set_id =
  (* Fail fast if the server does not coordinate this set. *)
  let dir = Node_server.directory_truth server ~set_id in
  let t =
    {
      client;
      server;
      set_id;
      monitor = Spec.Monitor.create ();
      universe = Oid.Set.empty;
      history = [ (Directory.version dir, Directory.members dir) ];
      unhook = (fun () -> ());
    }
  in
  let unhook =
    Node_server.on_directory_mutation server ~set_id (fun op ->
        (* A removal's oid leaves [truth] but must stay in the universe so
           its (in)accessibility keeps being recorded. *)
        (match op with
        | Directory.Remove o | Directory.Add o -> t.universe <- Oid.Set.add o t.universe);
        t.history <- (Directory.version dir, Directory.members dir) :: t.history;
        let s, accessible = capture t in
        let mop = mutation_op op in
        let ephase =
          match mop with
          | Spec.Sstate.Madd e ->
              Weakset_obs.Event.Phase_mutation (Spec_add (event_elem e))
          | Spec.Sstate.Mremove e ->
              Weakset_obs.Event.Phase_mutation (Spec_remove (event_elem e))
        in
        emit_observe t ephase s accessible;
        Spec.Monitor.observe_mutation t.monitor ~time:(now t) ~op:mop ~s ~accessible)
  in
  t.unhook <- unhook;
  t

let detach t = t.unhook ()

let monitor t = t.monitor
let computation t = Spec.Monitor.computation t.monitor

let observe_first ?version ?linearised t =
  let s, accessible = capture ?version ?linearised t in
  emit_observe t Weakset_obs.Event.Phase_first s accessible;
  Spec.Monitor.observe_first t.monitor ~time:(now t) ~s ~accessible

let invocation_started t =
  let s, accessible = capture t in
  emit_observe t Weakset_obs.Event.Phase_invocation_start s accessible;
  Spec.Monitor.invocation_started t.monitor ~time:(now t) ~s ~accessible

let invocation_retry ?version ?linearised t =
  let s, accessible = capture ?version ?linearised t in
  emit_observe t Weakset_obs.Event.Phase_invocation_retry s accessible;
  Spec.Monitor.invocation_retry t.monitor ~time:(now t) ~s ~accessible

let invocation_completed t term =
  let s, accessible = capture t in
  let ephase =
    match term with
    | Spec.Sstate.Returns -> Weakset_obs.Event.Phase_returns
    | Spec.Sstate.Fails -> Weakset_obs.Event.Phase_fails
    | Spec.Sstate.Suspends e -> Weakset_obs.Event.Phase_suspends (event_elem e)
  in
  emit_observe t ephase s accessible;
  Spec.Monitor.invocation_completed t.monitor ~time:(now t) ~term ~s ~accessible

let suspends oid = Spec.Sstate.Suspends (elem_of_oid oid)

let check t spec = Spec.Figures.check spec (computation t)
