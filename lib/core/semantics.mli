(** The weak-set design space (paper §3).

    A point in the space fixes three dimensions:
    - {e mutability}: what the type [constraint] allows other processes to
      do to the set while it exists;
    - {e vintage}: whether the iterator answers with respect to the set's
      value when first called or its current value (Garcia-Molina &
      Wiederhold's "currency");
    - {e failure handling}: pessimistic (signal [failure] as soon as an
      un-yielded member is inaccessible) or optimistic (block and retry,
      expecting the failure to be repaired).

    The four named points are the paper's Figures 3, 4, 5, 6.  (Figure 1
    is {!immutable} run in a failure-free world.) *)

type mutability = Immutable | Grow_only | Mutable_any

type vintage = First_vintage | Current_vintage

type failure_handling = Pessimistic | Optimistic

type t = {
  mutability : mutability;
  vintage : vintage;
  failure_handling : failure_handling;
  read_nearest_replica : bool;
      (** optimistic iterators may read membership from the nearest
          (possibly stale) directory replica instead of the coordinator —
          the availability/consistency knob of ablation A1 *)
  linearizable : bool;
      (** pin a directory version at open and iterate exactly that
          snapshot via versioned reads, blocking (never failing) until
          every pinned member is fetched — the fifth design point
          (arXiv:1705.08885), judged against [Figures.lin] *)
}

(** Figure 3: distributed read lock held for the whole iteration. *)
val immutable : t

(** Figure 4: atomic membership snapshot at first call; mutations lost. *)
val snapshot : t

(** Figure 5: ghost copies defer removals; sees concurrent additions;
    fails pessimistically. *)
val grow_only : t

(** Figure 6: the dynamic-sets semantics — no locks, current vintage,
    never fails. *)
val optimistic : t

(** [optimistic] reading stale nearby replicas. *)
val optimistic_stale : t

(** The linearizable snapshot iterator: versioned-snapshot reads against
    a version pinned at open, no global locks, never fails. *)
val lin : t

(** All named points with their names, strongest first. *)
val all : (string * t) list

val name : t -> string
val pp : Format.formatter -> t -> unit

(** The paper figure this point implements, as an executable spec.
    [no_failures] selects Figure 1 rather than Figure 3 for {!immutable}
    (use it when the scenario injects no faults). *)
val spec_of : ?no_failures:bool -> t -> Weakset_spec.Figures.spec

(** The documented §3.4-prose relaxation used to judge stale-replica
    optimistic runs (A1); equals [spec_of] for non-optimistic points. *)
val window_spec_of : t -> Weakset_spec.Figures.spec
