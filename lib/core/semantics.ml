type mutability = Immutable | Grow_only | Mutable_any

type vintage = First_vintage | Current_vintage

type failure_handling = Pessimistic | Optimistic

type t = {
  mutability : mutability;
  vintage : vintage;
  failure_handling : failure_handling;
  read_nearest_replica : bool;
  linearizable : bool;
}

let immutable =
  {
    mutability = Immutable;
    vintage = First_vintage;
    failure_handling = Pessimistic;
    read_nearest_replica = false;
    linearizable = false;
  }

let snapshot =
  {
    mutability = Mutable_any;
    vintage = First_vintage;
    failure_handling = Pessimistic;
    read_nearest_replica = false;
    linearizable = false;
  }

let grow_only =
  {
    mutability = Grow_only;
    vintage = Current_vintage;
    failure_handling = Pessimistic;
    read_nearest_replica = false;
    linearizable = false;
  }

let optimistic =
  {
    mutability = Mutable_any;
    vintage = Current_vintage;
    failure_handling = Optimistic;
    read_nearest_replica = false;
    linearizable = false;
  }

let optimistic_stale = { optimistic with read_nearest_replica = true }

(* The fifth design point: iterate a pinned directory version via
   snapshot-at-version reads, blocking (never failing) until every
   pinned member is fetched.  Judged against [Figures.lin]
   (arXiv:1705.08885). *)
let lin =
  {
    mutability = Mutable_any;
    vintage = First_vintage;
    failure_handling = Optimistic;
    read_nearest_replica = false;
    linearizable = true;
  }

let all =
  [
    ("immutable", immutable);
    ("snapshot", snapshot);
    ("grow-only", grow_only);
    ("optimistic", optimistic);
    ("optimistic-stale", optimistic_stale);
    ("lin", lin);
  ]

let name t =
  match List.find_opt (fun (_, s) -> s = t) all with
  | Some (n, _) -> n
  | None -> "custom"

let pp fmt t =
  let mut =
    match t.mutability with
    | Immutable -> "immutable"
    | Grow_only -> "grow-only"
    | Mutable_any -> "mutable"
  in
  let vin = match t.vintage with First_vintage -> "first" | Current_vintage -> "current" in
  let fh =
    match t.failure_handling with Pessimistic -> "pessimistic" | Optimistic -> "optimistic"
  in
  (* The linearizable flag overrides every other knob in dispatch, so
     describing those knobs would mislead. *)
  if t.linearizable then Format.fprintf fmt "mutable(snapshot pinned at open, never fails)"
  else
    Format.fprintf fmt "%s(%s vintage, %s%s)" mut vin fh
      (if t.read_nearest_replica then ", stale replicas" else "")

let spec_of ?(no_failures = false) t =
  let open Weakset_spec.Figures in
  if t.linearizable then lin
  else
    match (t.mutability, t.vintage, t.failure_handling) with
    | Immutable, _, _ -> if no_failures then fig1 else fig3
    | Mutable_any, First_vintage, _ -> fig4
    | Grow_only, _, _ -> fig5
    | Mutable_any, Current_vintage, Optimistic -> fig6
    | Mutable_any, Current_vintage, Pessimistic -> fig5 (* closest published point *)

let window_spec_of t =
  if t.linearizable then Weakset_spec.Figures.lin
  else
    match (t.mutability, t.vintage, t.failure_handling) with
    | Mutable_any, Current_vintage, Optimistic -> Weakset_spec.Figures.fig6_window
    | _ -> spec_of t
