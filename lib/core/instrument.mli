(** Bridges real iterator runs to the specification monitor.

    The instrument has {e omniscient} access to the coordinator's
    directory (direct memory reads, not RPC): in a discrete-event
    simulation, reading it at the client's decision instant gives the
    exact value of [s] in that state, so recorded computations are
    ground truth even though the implementation under test only ever sees
    RPC responses.  Mutations by any process are captured via the
    coordinator's mutation hook.

    Capture points that correspond to a membership {e read} accept the
    member list the reply delivered as [?linearised]: a mutation landing
    while that reply is in flight makes the directory-at-receipt diverge
    from the view the implementation decides on, and judging the decision
    against a state it never saw produces phantom violations.  With
    [?linearised] the recorded [s] is the linearisation-point value;
    [accessible] is still computed at the capture instant.

    Because linearised views are excluded from the type-constraint scan
    (see {!Weakset_spec.Constraint_clause}), the instrument keeps a
    per-version record of the coordinator's membership and, when the
    reply's [?version] is supplied alongside [?linearised], cross-checks
    the delivered view against it — a corrupt read path raises
    {!Corrupt_view} instead of silently skewing the computation. *)

type t

(** [attach ~client ~server ~set_id] creates an instrument for the
    collection coordinated by [server] and registers its mutation hook.
    Raises [Not_found] if [server] does not host [set_id]. *)
val attach :
  client:Weakset_store.Client.t -> server:Weakset_store.Node_server.t -> set_id:int -> t

(** Unregister the mutation hook (the recorded computation stops growing;
    call when the instrumented run is over). *)
val detach : t -> unit

val monitor : t -> Weakset_spec.Monitor.t
val computation : t -> Weakset_spec.Computation.t

(** Oid → spec element (id = oid number, label = printed oid). *)
val elem_of_oid : Weakset_store.Oid.t -> Weakset_spec.Elem.t

(** The authoritative membership at a directory version, from this
    instrument's per-version history; [None] for versions predating its
    attachment.  This is the ground truth cache-coherence properties are
    checked against: a cache-served view at version [v] must equal
    [membership_at v]. *)
val membership_at :
  t -> Weakset_store.Version.t -> Weakset_store.Oid.Set.t option

(** {1 Capture points, called by iterator implementations} *)

(** Raised when a linearised view contradicts the directory's recorded
    membership at the reply's version. *)
exception Corrupt_view of string

val observe_first :
  ?version:Weakset_store.Version.t -> ?linearised:Weakset_store.Oid.Set.t -> t -> unit

val invocation_started : t -> unit

val invocation_retry :
  ?version:Weakset_store.Version.t -> ?linearised:Weakset_store.Oid.Set.t -> t -> unit

val invocation_completed : t -> Weakset_spec.Sstate.termination -> unit

(** Spec termination value for yielding [oid]. *)
val suspends : Weakset_store.Oid.t -> Weakset_spec.Sstate.termination

(** [check t spec] validates the recorded computation. *)
val check : t -> Weakset_spec.Figures.spec -> Weakset_spec.Figures.verdict
