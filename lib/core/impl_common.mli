(** Shared plumbing for the iterator implementations: the per-iterator
    context, element choice (closest reachable first, deterministic
    tie-break), instrumentation shims, and blocking/backoff helpers. *)

type ctx = {
  client : Weakset_store.Client.t;
  sref : Weakset_store.Protocol.set_ref;
  instrument : Instrument.t option;
  heal_signal : Weakset_sim.Signal.t option;
      (** topology-change signal; optimistic iterators park on it *)
  retry_backoff : float;  (** poll interval when no signal is available *)
  lock_timeout : float;   (** how long lock acquisition may block *)
  max_fetch_attempts : int;
      (** pessimistic iterators give up on an element after this many
          failed fetches of a supposedly reachable home *)
}

val make_ctx :
  ?instrument:Instrument.t ->
  ?heal_signal:Weakset_sim.Signal.t ->
  ?retry_backoff:float ->
  ?lock_timeout:float ->
  ?max_fetch_attempts:int ->
  Weakset_store.Client.t ->
  Weakset_store.Protocol.set_ref ->
  ctx

val engine : ctx -> Weakset_sim.Engine.t

(** Mutation-testing hook (off by default, and in all production paths):
    when set, the grow-only iterator silently marks un-yielded members
    whose homes are unreachable as yielded and returns instead of
    signalling failure — a deliberately planted partition-window bug the
    VOPR swarm must detect, shrink and replay (see [lib/vopr]). *)
val planted_grow_only_drop : bool ref

(** Pick the un-yielded candidate with the closest (cheapest-path)
    reachable home; ties break on oid number.  [None] if no candidate's
    home is reachable. *)
val pick_reachable : ctx -> Weakset_store.Oid.Set.t -> Weakset_store.Oid.t option

(** Park until the topology changes: waits on the heal signal when
    available (re-checking the generation to avoid lost wakeups), else
    sleeps [retry_backoff]. *)
val wait_for_change : ctx -> seen_generation:int -> unit

(** Current heal-signal generation (0 when no signal). *)
val signal_generation : ctx -> int

(** {1 Instrumentation shims (no-ops when not instrumented)} *)

(** Stop recording (detach the instrument's mutation hook); called by
    every implementation at close, {e before} releasing distributed
    resources, so post-run activity (ghost GC, lock handover) stays
    outside the recorded computation. *)
val inst_detach : ctx -> unit

(** [?linearised] is the member list the implementation's membership
    read delivered; the instrument records it as [s] instead of the
    directory-at-receipt, so the monitored pre-state is exactly the view
    the decision linearised on.  Pass the reply's [?version] with it so
    the instrument can cross-check the view against the directory's
    recorded membership at that version (see {!Instrument}). *)
val inst_first :
  ?version:Weakset_store.Version.t -> ?linearised:Weakset_store.Oid.Set.t -> ctx -> unit

val inst_started : ctx -> unit

val inst_retry :
  ?version:Weakset_store.Version.t -> ?linearised:Weakset_store.Oid.Set.t -> ctx -> unit
val inst_completed : ctx -> Weakset_spec.Sstate.termination -> unit

(** [inst_yield ctx oid] = [inst_completed ctx (Suspends oid)]. *)
val inst_yield : ctx -> Weakset_store.Oid.t -> unit
