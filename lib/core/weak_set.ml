module Client = Weakset_store.Client
module Lockmgr = Weakset_store.Lockmgr

type t = {
  client : Client.t;
  sref : Weakset_store.Protocol.set_ref;
  semantics : Semantics.t;
  heal_signal : Weakset_sim.Signal.t option;
  retry_backoff : float;
  lock_timeout : float;
  coordinator_server : Weakset_store.Node_server.t option;
}

let make ?heal_signal ?(retry_backoff = 1.0) ?(lock_timeout = 600.0) ?coordinator_server client
    sref semantics =
  { client; sref; semantics; heal_signal; retry_backoff; lock_timeout; coordinator_server }

let semantics t = t.semantics
let sref t = t.sref
let client t = t.client

(* Immutable semantics: mutations must exclude running iterators via the
   write lock. *)
let with_mutation_lock t f =
  match t.semantics.Semantics.mutability with
  | Semantics.Immutable -> (
      match
        Client.lock_acquire (Client.with_timeout t.client t.lock_timeout) t.sref Lockmgr.Write
      with
      | Error e -> Error e
      | Ok owner ->
          let result = f () in
          ignore (Client.lock_release t.client t.sref ~owner);
          result)
  | Semantics.Grow_only | Semantics.Mutable_any -> f ()

let add t oid = with_mutation_lock t (fun () -> Client.dir_add t.client t.sref oid)
let remove t oid = with_mutation_lock t (fun () -> Client.dir_remove t.client t.sref oid)
let size t = Client.dir_size t.client t.sref

let mem t oid =
  match
    Client.dir_read t.client ~from:t.sref.Weakset_store.Protocol.coordinator
      ~set_id:t.sref.Weakset_store.Protocol.set_id
  with
  | Ok (_, members) -> Ok (List.exists (Weakset_store.Oid.equal oid) members)
  | Error e -> Error e

let provision ?(replicas = []) ?(replica_interval = 10.0) ~set_id ~coordinator_server
    ~semantics () =
  let policy =
    match semantics.Semantics.mutability with
    | Semantics.Grow_only -> Weakset_store.Node_server.Defer_removes_while_iterating
    | Semantics.Immutable | Semantics.Mutable_any -> Weakset_store.Node_server.Immediate
  in
  Weakset_store.Node_server.host_directory coordinator_server ~set_id ~policy;
  List.iter
    (fun (server : Weakset_store.Node_server.t) ->
      Weakset_store.Node_server.host_replica server ~set_id
        ~of_:(Weakset_store.Node_server.node coordinator_server)
        ~interval:replica_interval ~until:1.0e9)
    replicas;
  {
    Weakset_store.Protocol.set_id;
    coordinator = Weakset_store.Node_server.node coordinator_server;
    replicas = List.map Weakset_store.Node_server.node replicas;
  }

let elements ?(instrument = false) t =
  let inst =
    if instrument then
      match t.coordinator_server with
      | Some server ->
          Some
            (Instrument.attach ~client:t.client ~server
               ~set_id:t.sref.Weakset_store.Protocol.set_id)
      | None -> invalid_arg "Weak_set.elements: instrumentation needs coordinator_server"
    else None
  in
  let ctx =
    Impl_common.make_ctx ?instrument:inst ?heal_signal:t.heal_signal
      ~retry_backoff:t.retry_backoff ~lock_timeout:t.lock_timeout t.client t.sref
  in
  let iter =
    if t.semantics.Semantics.linearizable then Impl_lin.open_ ctx
    else
      match
        ( t.semantics.Semantics.mutability,
          t.semantics.Semantics.vintage,
          t.semantics.Semantics.failure_handling )
      with
    | Semantics.Immutable, _, _ -> Impl_first_vintage.open_locking ctx
    | Semantics.Mutable_any, Semantics.First_vintage, _ -> Impl_first_vintage.open_snapshot ctx
    | Semantics.Grow_only, _, _ -> Impl_grow_only.open_ ctx
    | Semantics.Mutable_any, Semantics.Current_vintage, Semantics.Optimistic ->
        Impl_optimistic.open_
          ~read_nearest_replica:t.semantics.Semantics.read_nearest_replica ctx
    | Semantics.Mutable_any, Semantics.Current_vintage, Semantics.Pessimistic ->
        Impl_grow_only.open_ ~register:false ctx
  in
  (iter, inst)

let spec ?no_failures t = Semantics.spec_of ?no_failures t.semantics
