module Client = Weakset_store.Client
module Oid = Weakset_store.Oid
module Topology = Weakset_net.Topology
open Impl_common

type state = {
  ctx : ctx;
  read_nearest_replica : bool;
  mutable opened : bool;
  mutable yielded : Oid.Set.t;
  mutable dead : Oid.Set.t; (* members whose contents are permanently gone *)
}

let ensure_open st =
  if not st.opened then begin
    st.opened <- true;
    inst_first st.ctx
  end

(* Choose which membership host to consult this attempt. *)
let membership_host st =
  let c = st.ctx.client in
  let sref = st.ctx.sref in
  if st.read_nearest_replica then Client.nearest_dir_host c sref
  else
    let topo = Client.topology c in
    let me = Client.node c in
    let coord = sref.Weakset_store.Protocol.coordinator in
    if Topology.reachable topo me coord then Some coord
    else
      (* Optimistically settle for any reachable (stale) replica. *)
      List.find_opt
        (fun r -> Topology.reachable topo me r)
        sref.Weakset_store.Protocol.replicas

let next st () =
  ensure_open st;
  inst_started st.ctx;
  let rec attempt ~refresh =
    (* The recorded pre-state must be the one the invocation finally acts
       on, so every retry refreshes the monitor's buffered pre-state. *)
    if refresh then inst_retry st.ctx;
    (* Sample the repair-signal generation before deciding, so a repair
       racing our reads cannot be missed while parking. *)
    let gen = signal_generation st.ctx in
    let block_and_retry () =
      wait_for_change st.ctx ~seen_generation:gen;
      attempt ~refresh:true
    in
    match membership_host st with
    | None -> block_and_retry ()
    | Some host -> (
        match
          Client.dir_read st.ctx.client ~from:host
            ~set_id:st.ctx.sref.Weakset_store.Protocol.set_id
        with
        | Error _ -> block_and_retry ()
        | Ok (version, members) -> (
            let members = Oid.Set.of_list members in
            (* Linearise at the decisive membership read.  A coordinator
               reply is authoritative, so record exactly what it delivered
               as the pre-state; a replica reply is deliberately stale and
               its gap from the directory is the measured quantity, so
               keep the omniscient capture there. *)
            let coord = st.ctx.sref.Weakset_store.Protocol.coordinator in
            if Weakset_net.Nodeid.equal host coord then
              inst_retry ~version ~linearised:members st.ctx
            else inst_retry st.ctx;
            let remaining = Oid.Set.diff (Oid.Set.diff members st.yielded) st.dead in
            if Oid.Set.is_empty remaining then begin
              inst_completed st.ctx Weakset_spec.Sstate.Returns;
              Iterator.Done
            end
            else
              match pick_reachable st.ctx remaining with
              | None ->
                  (* Members exist but none is accessible: block until the
                     failure is repaired — never signal (Figure 6). *)
                  block_and_retry ()
              | Some oid -> (
                  match Client.fetch st.ctx.client oid with
                  | Ok v ->
                      st.yielded <- Oid.Set.add oid st.yielded;
                      inst_yield st.ctx oid;
                      Iterator.Yield (oid, v)
                  | Error Client.No_such_object ->
                      (* A stale view listed a member whose contents are
                         gone; skip it rather than retry forever. *)
                      st.dead <- Oid.Set.add oid st.dead;
                      attempt ~refresh:true
                  | Error
                      ( Client.Unreachable | Client.Timeout | Client.No_service
                      | Client.Overloaded | Client.Budget_exhausted ) ->
                      block_and_retry ())))
  in
  attempt ~refresh:false

let open_ ?(read_nearest_replica = false) ctx =
  let st =
    { ctx; read_nearest_replica; opened = false; yielded = Oid.Set.empty; dead = Oid.Set.empty }
  in
  Iterator.make ~next:(next st)
    ~close:(fun () -> inst_detach ctx)
    ?monitor:(Option.map Instrument.monitor ctx.instrument)
    ()
