module Client = Weakset_store.Client
module Oid = Weakset_store.Oid
open Impl_common

type state = {
  ctx : ctx;
  register : bool;
  mutable opened : bool;
  mutable open_failure : Client.error option;
  mutable registered : bool;
  mutable yielded : Oid.Set.t;
}

let ensure_open st =
  if not st.opened then begin
    st.opened <- true;
    if st.register then
      match Client.iter_open st.ctx.client st.ctx.sref with
      | Ok () ->
          st.registered <- true;
          inst_first st.ctx
      | Error e -> st.open_failure <- Some e
    else inst_first st.ctx
  end

let deregister st =
  if st.registered then begin
    st.registered <- false;
    ignore (Client.iter_close st.ctx.client st.ctx.sref)
  end

let read_members st =
  Client.dir_read st.ctx.client ~from:st.ctx.sref.Weakset_store.Protocol.coordinator
    ~set_id:st.ctx.sref.Weakset_store.Protocol.set_id

let next st () =
  ensure_open st;
  match st.open_failure with
  | Some e -> Iterator.Failed e
  | None ->
      inst_started st.ctx;
      let rec attempt fetch_failures =
        match read_members st with
        | Error e ->
            (* Pessimistic: if we cannot even read the membership, fail. *)
            inst_completed st.ctx Weakset_spec.Sstate.Fails;
            Iterator.Failed e
        | Ok (version, members) -> (
            let members = Oid.Set.of_list members in
            (* Linearise here: the invocation acts on exactly this reply's
               membership, so record it as the pre-state rather than the
               directory at receipt (which in-flight mutations may have
               already changed). *)
            inst_retry ~version ~linearised:members st.ctx;
            let remaining = Oid.Set.diff members st.yielded in
            if Oid.Set.is_empty remaining then begin
              inst_completed st.ctx Weakset_spec.Sstate.Returns;
              Iterator.Done
            end
            else
              match pick_reachable st.ctx remaining with
              | None when !planted_grow_only_drop ->
                  (* Planted bug (mutation testing): silently drop the
                     unreachable members and pretend the iteration is
                     complete instead of signalling the failure. *)
                  st.yielded <- Oid.Set.union st.yielded remaining;
                  inst_completed st.ctx Weakset_spec.Sstate.Returns;
                  Iterator.Done
              | None ->
                  inst_completed st.ctx Weakset_spec.Sstate.Fails;
                  Iterator.Failed Client.Unreachable
              | Some oid -> (
                  match Client.fetch st.ctx.client oid with
                  | Ok v ->
                      st.yielded <- Oid.Set.add oid st.yielded;
                      inst_yield st.ctx oid;
                      Iterator.Yield (oid, v)
                  | Error Client.No_such_object ->
                      inst_completed st.ctx Weakset_spec.Sstate.Fails;
                      Iterator.Failed Client.No_such_object
                  | Error
                      ( Client.Unreachable | Client.Timeout | Client.No_service
                      | Client.Overloaded | Client.Budget_exhausted ) ->
                      if fetch_failures + 1 >= st.ctx.max_fetch_attempts then begin
                        inst_completed st.ctx Weakset_spec.Sstate.Fails;
                        Iterator.Failed Client.Timeout
                      end
                      else begin
                        inst_retry st.ctx;
                        attempt (fetch_failures + 1)
                      end))
      in
      attempt 0

let open_ ?(register = true) ctx =
  let st =
    {
      ctx;
      register;
      opened = false;
      open_failure = None;
      registered = false;
      yielded = Oid.Set.empty;
    }
  in
  Iterator.make ~next:(next st)
    ~close:(fun () ->
      inst_detach ctx;
      deregister st)
    ?monitor:(Option.map Instrument.monitor ctx.instrument)
    ()
