module Client = Weakset_store.Client
module Oid = Weakset_store.Oid
module Lockmgr = Weakset_store.Lockmgr
open Impl_common

type protocol = Locking | Snapshot

type state = {
  ctx : ctx;
  protocol : protocol;
  mutable opened : bool;
  mutable open_failure : Client.error option;
  mutable pool : Oid.Set.t;     (* s_first: the fixed element pool *)
  mutable yielded : Oid.Set.t;
  mutable lock_owner : int option;
}

let ensure_open st =
  if not st.opened then begin
    st.opened <- true;
    let c = st.ctx.client in
    let acquire () =
      match st.protocol with
      | Snapshot -> Ok ()
      | Locking -> (
          match
            Client.lock_acquire (Client.with_timeout c st.ctx.lock_timeout) st.ctx.sref
              Lockmgr.Read
          with
          | Ok owner ->
              st.lock_owner <- Some owner;
              Ok ()
          | Error e -> Error e)
    in
    match acquire () with
    | Error e -> st.open_failure <- Some e
    | Ok () -> (
        match
          Client.dir_read c ~from:st.ctx.sref.Weakset_store.Protocol.coordinator
            ~set_id:st.ctx.sref.Weakset_store.Protocol.set_id
        with
        | Ok (version, members) ->
            st.pool <- Oid.Set.of_list members;
            (* The vintage is the membership this reply delivered, not the
               directory at receipt — a mutation landing while the reply
               was in flight is not part of the pool we iterate. *)
            inst_first ~version ~linearised:st.pool st.ctx
        | Error e -> st.open_failure <- Some e)
  end

let release_lock st =
  match st.lock_owner with
  | None -> ()
  | Some owner ->
      st.lock_owner <- None;
      ignore (Client.lock_release st.ctx.client st.ctx.sref ~owner)

let next st () =
  ensure_open st;
  match st.open_failure with
  | Some e -> Iterator.Failed e
  | None ->
      inst_started st.ctx;
      let rec attempt fetch_failures =
        let remaining = Oid.Set.diff st.pool st.yielded in
        if Oid.Set.is_empty remaining then begin
          inst_completed st.ctx Weakset_spec.Sstate.Returns;
          Iterator.Done
        end
        else
          match pick_reachable st.ctx remaining with
          | None ->
              (* Pessimistic: un-yielded first-vintage elements exist but
                 none is accessible. *)
              inst_completed st.ctx Weakset_spec.Sstate.Fails;
              Iterator.Failed Client.Unreachable
          | Some oid -> (
              match Client.fetch st.ctx.client oid with
              | Ok v ->
                  st.yielded <- Oid.Set.add oid st.yielded;
                  inst_yield st.ctx oid;
                  Iterator.Yield (oid, v)
              | Error Client.No_such_object ->
                  (* The member's contents are gone: indistinguishable from
                     a permanent failure for this semantics. *)
                  inst_completed st.ctx Weakset_spec.Sstate.Fails;
                  Iterator.Failed Client.No_such_object
              | Error
                  ( Client.Unreachable | Client.Timeout | Client.No_service
                  | Client.Overloaded | Client.Budget_exhausted ) ->
                  if fetch_failures + 1 >= st.ctx.max_fetch_attempts then begin
                    inst_completed st.ctx Weakset_spec.Sstate.Fails;
                    Iterator.Failed Client.Timeout
                  end
                  else begin
                    (* Reachability changed under us; re-linearise. *)
                    inst_retry st.ctx;
                    attempt (fetch_failures + 1)
                  end)
      in
      attempt 0

let make protocol ctx =
  let st =
    {
      ctx;
      protocol;
      opened = false;
      open_failure = None;
      pool = Oid.Set.empty;
      yielded = Oid.Set.empty;
      lock_owner = None;
    }
  in
  Iterator.make ~next:(next st)
    ~close:(fun () ->
      inst_detach ctx;
      release_lock st)
    ?monitor:(Option.map Instrument.monitor ctx.instrument)
    ()

let open_locking ctx = make Locking ctx
let open_snapshot ctx = make Snapshot ctx
