module Client = Weakset_store.Client
module Oid = Weakset_store.Oid
module Version = Weakset_store.Version
open Impl_common

(* The linearizable snapshot iterator (arXiv:1705.08885).

   The first call pins the directory at one version with a single
   authoritative uncached read; every subsequent invocation re-derives
   the pinned membership with a snapshot-at-version read
   ([Dir_read_at]), so concurrent mutation — which advances the
   directory past the pinned version — can never change what this
   iterator yields.  No locks are taken anywhere: the coordinator's
   mutation log below the pinned version is immutable, which is all the
   read needs.  Failures are handled like Figure 6's optimistic
   iterators, by blocking until the fault heals — the pinned members'
   contents outlive directory removal (removal is a membership edit,
   not an object delete), so the snapshot always drains once the
   network allows.  The run linearizes at the pin read: yields ⊆ s_σ
   and the returned set equals s_σ for σ = the pinned state. *)

type state = {
  ctx : ctx;
  mutable pinned : (Version.t * Oid.Set.t) option;
  mutable yielded : Oid.Set.t;
}

let coordinator st = st.ctx.sref.Weakset_store.Protocol.coordinator
let set_id st = st.ctx.sref.Weakset_store.Protocol.set_id

(* Pin the snapshot, blocking (never failing) until the coordinator
   answers.  Nothing is recorded until the pin lands: a run that never
   reached its first-state has no computation to judge. *)
let rec ensure_open st =
  match st.pinned with
  | Some pin -> pin
  | None -> (
      let gen = signal_generation st.ctx in
      match
        Client.dir_read_direct st.ctx.client ~from:(coordinator st) ~set_id:(set_id st)
      with
      | Ok (version, members) ->
          let pool = Oid.Set.of_list members in
          st.pinned <- Some (version, pool);
          inst_first ~version ~linearised:pool st.ctx;
          (version, pool)
      | Error _ ->
          wait_for_change st.ctx ~seen_generation:gen;
          ensure_open st)

let next st () =
  let version, _ = ensure_open st in
  inst_started st.ctx;
  let rec attempt ~refresh =
    (* The recorded pre-state must be the one the invocation finally acts
       on, so every retry refreshes the monitor's buffered pre-state. *)
    if refresh then inst_retry st.ctx;
    let gen = signal_generation st.ctx in
    let block_and_retry () =
      wait_for_change st.ctx ~seen_generation:gen;
      attempt ~refresh:true
    in
    (* Re-derive the pinned membership from the coordinator's log: the
       reply is version-exact however far truth has moved since. *)
    match
      Client.dir_read_at st.ctx.client ~from:(coordinator st) ~set_id:(set_id st) ~version
    with
    | Error _ -> block_and_retry ()
    | Ok (_, members) -> (
        let members = Oid.Set.of_list members in
        inst_retry ~version ~linearised:members st.ctx;
        let remaining = Oid.Set.diff members st.yielded in
        if Oid.Set.is_empty remaining then begin
          inst_completed st.ctx Weakset_spec.Sstate.Returns;
          Iterator.Done
        end
        else
          match pick_reachable st.ctx remaining with
          | None ->
              (* Pinned members exist but none is accessible: block until
                 the failure is repaired — never signal. *)
              block_and_retry ()
          | Some oid -> (
              match Client.fetch st.ctx.client oid with
              | Ok v ->
                  st.yielded <- Oid.Set.add oid st.yielded;
                  inst_yield st.ctx oid;
                  Iterator.Yield (oid, v)
              | Error
                  ( Client.No_such_object | Client.Unreachable | Client.Timeout
                  | Client.No_service | Client.Overloaded
                  | Client.Budget_exhausted ) ->
                  (* Unlike an optimistic iterator there is no stale view
                     to blame and nothing to skip: the pinned element's
                     contents must reappear for the snapshot to be
                     honoured, so block until they do. *)
                  block_and_retry ()))
  in
  attempt ~refresh:false

let open_ ctx =
  let st = { ctx; pinned = None; yielded = Oid.Set.empty } in
  Iterator.make ~next:(next st)
    ~close:(fun () -> inst_detach ctx)
    ?monitor:(Option.map Instrument.monitor ctx.instrument)
    ()
