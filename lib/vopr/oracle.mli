(** The VOPR judge: decides whether a finished simulated run behaved.

    Safety is judged by replaying {!Weakset_spec.Figures.check} over each
    instrumented iteration's recorded computation and cross-checking the
    verdict against the always-on {!Weakset_spec.Monitor_online} that
    watched the same event stream (the two must agree — a disagreement
    means the event pipeline lost or distorted spec observations).
    Liveness verdicts cover what the spec monitors cannot see: an iterator
    still suspended after every fault healed, fibers parked forever
    (engine deadlock / leaks), fiber crashes, and RPC calls whose replies
    vanished without any fault to blame.

    The issue constructors form a severity lattice (see {!severity});
    an empty issue list means the run passed. *)

type issue =
  | Stale_beyond_lease of {
      time : float;  (** virtual time of the offending cache hit *)
      set_id : int;
      served : int;  (** directory version the cache served *)
      required : int;  (** version a working callback would have forced *)
      age : float;  (** how long the lease had been held at the hit *)
    }
      (** the lease cache served a directory view staler than its lease
          allows: no fault excused the missing invalidation, yet the
          served version lags what the coordinator had long enough ago
          for a callback to have landed (see {!cache_evidence}) *)
  | Spec_violation of { iteration : int; semantics : string; where : string; message : string }
      (** the replayed {!Weakset_spec.Figures.check} found a violation *)
  | Monitor_mismatch of { iteration : int; semantics : string; detail : string }
      (** online monitor and post-hoc replay check disagree *)
  | Fiber_crash of { fiber : string; exn_text : string }
  | Stuck_iterator of { iteration : int; semantics : string }
      (** iteration never finished although every fault was healed *)
  | Steps_exhausted of { steps : int }  (** the run hit the step cap: livelock *)
  | Leaked_fibers of { count : int; fibers : string list }
      (** fibers still parked at quiescence, outside any iteration *)
  | Lost_rpc of { count : int }
      (** RPC calls that never completed (no reply, no timeout) *)
  | Commit_lost of { opnum : int; op : string; node : int }
      (** commit safety: an op acknowledged committed at [opnum] is
          absent from [node]'s final log *)
  | Commit_reordered of { opnum : int; first : string; second : string; node : int }
      (** commit safety: [opnum] carries two different ops — [node] is
          [-1] when the double-ack shows in the ledger itself, else the
          member whose final log contradicts the ledger *)
  | Election_overdue of { deadline : float }
      (** view-change liveness: the group was quorum-connected for a
          full election window yet had no stable leader by [deadline] *)
  | Shed_divergence of { node : int; extra : string list; missing : string list }
      (** shed safety: [node]'s hosted directory does not equal the fold
          of its own committed log — some effect landed outside
          consensus, e.g. an admission-shed mutation that was not a
          clean no-op.  [extra] are directory members no committed entry
          justifies; [missing] the converse *)

(** What the runner hands the judge about one executed iteration. *)
type iteration_input = {
  index : int;
  semantics : string;
  faulty : bool;
      (** did the plan inject any faults?  Gates the tolerated
          mid-invocation race classes (see {!judge}). *)
  spec : Weakset_spec.Figures.spec;
  outcome : [ `Done | `Failed of string | `Limit | `Unfinished ];
  computation : Weakset_spec.Computation.t;
  online_violations : Weakset_spec.Figures.violation list;
      (** distinct violations the online monitor latched (after finish) *)
}

(** One directory cache hit, as captured from the event stream. *)
type cache_hit = {
  h_time : float;
  h_set : int;
  h_version : int;  (** version the cache served *)
  h_age : float;  (** virtual time since the lease was granted *)
}

(** Evidence for the cache-coherence rule.  [mutations] is the
    coordinator's mutation log — (time, resulting version), ascending;
    [inval_grace] bounds how long a wire invalidation can legitimately be
    in flight (a function of topology diameter and link latency);
    [fault_windows] are the plan's fault intervals, inside which (padded
    by the grace) TTL-fallback staleness up to the lease is excused. *)
type cache_evidence = {
  hits : cache_hit list;
  mutations : (float * int) list;
  lease_ttl : float;
  inval_grace : float;
  fault_windows : (float * float) list;
}

(** Evidence from a replication-group run (built by the scenario
    harness, {!Scenario}).  [r_ledger] is the client-visible commit
    ledger — every (opnum, canonical op) some leader acknowledged as
    committed; [r_final_logs] maps each surviving member (node id) to
    its final committed log; [r_probes] lists the liveness probes —
    (deadline, stable?) for each quiet window long enough that a
    quorum-connected group must have elected a leader; [r_dir_vs_log]
    gives, per surviving node, its directory membership next to the
    membership obtained by folding that node's own committed log — the
    two must agree (shed-is-a-clean-no-op, judged per node so commit
    propagation lag cannot fake a divergence). *)
type repl_evidence = {
  r_ledger : (int * string) list;
  r_final_logs : (int * (int * string) list) list;
  r_probes : (float * bool) list;
  r_dir_vs_log : (int * string list * string list) list;
}

type input = {
  iterations : iteration_input list;
  engine_crashes : (string * string) list;  (** fiber name, exception text *)
  parked_fibers : string list;
      (** names of fibers still alive (parked) after the run drained *)
  steps : int;
  step_cap : int;
  unmatched_rpcs : int;  (** [Rpc_call] events without a matching [Rpc_done] *)
  cache : cache_evidence option;  (** [None]: the run had no lease cache *)
  repl : repl_evidence option;  (** [None]: the run had no replication group *)
}

val judge : input -> issue list

(** Category slug of an issue ("spec-violation", "stuck-iterator", ...);
    the shrinker preserves categories, not exact messages. *)
val category : issue -> string

(** Lattice rank; higher is worse.  0 is reserved for "no issue". *)
val severity : issue -> int

(** Issues sorted most severe first. *)
val sort : issue list -> issue list

val describe : issue -> string

(** {1 JSON} (for repro bundles) *)

val issue_to_json : issue -> string
val issue_of_json : Weakset_obs.Json.t -> (issue, string) result

(** Do two issue lists fail in an overlapping way?  True when some
    category appears in both — the shrinker's preservation criterion. *)
val same_failure : issue list -> issue list -> bool
