(** Deterministic scenario generation for the VOPR swarm.

    From a single [Rng] seed, {!generate} derives a complete test {e plan}:
    a cluster {!config} (topology shape, node count, replica placement), a
    workload program (a time-sorted weighted mix of add/remove/size/iterate
    operations across all named iterator semantics) and a fault schedule
    (crashes with recovery, link cuts with heals, partitions with heals).
    The three parts are drawn from three {e split} streams of the root
    generator, so the config of a seed does not depend on how many workload
    or fault draws were made — {!config_of_seed} exploits (and the test
    suite asserts) exactly that independence.

    Plans are plain data: {!plan_to_json}/{!plan_of_json} round-trip them
    byte-exactly (floats render with 17 significant digits), which is what
    repro bundles and the shrinker rely on.

    Node-index convention (shared with [Runner]): index [0] is the
    directory coordinator ([Star]: the hub), index [nodes - 1] is the
    client, indexes [1 .. nodes - 2] home the member objects. *)

type shape = Clique | Star | Line

type open_loop = {
  ol_rate : float;  (** mean background arrivals per time unit *)
  ol_clients : int;  (** fibers the schedule is dealt across *)
  ol_bursty : bool;  (** geometric bursts instead of plain Poisson *)
}
(** Background open-loop traffic: size queries arriving on their own
    clock regardless of how slow the system is, so fault windows are hit
    by queued-up work instead of a single polite driver. *)

type config = {
  shape : shape;
  nodes : int;  (** total node count, >= 4 *)
  latency : float;  (** per-link latency (time units) *)
  replica_ixs : int list;  (** home indexes carrying directory replicas *)
  replica_interval : float;  (** anti-entropy pull period *)
  initial_size : int;  (** members provisioned before time 0 *)
  cache : bool;  (** iterating client runs a lease cache *)
  lease_ttl : float;  (** server-granted lease duration when [cache] *)
  open_loop : open_loop option;
      (** background arrival knob; [None] on most seeds (and on every
          bundle written before the knob existed) *)
}

type op =
  | Add of { at : float }  (** store a fresh object and add it as a member *)
  | Remove of { at : float }  (** remove the smallest current member *)
  | Size of { at : float }  (** authoritative size query *)
  | Iterate of { at : float; semantics : string; think : float; limit : int; repeat : int }
      (** run [repeat] full (instrumented) iterations back to back under
          the named semantics; [think] is consumer think-time per yield,
          [limit] bounds yields so grow-only races terminate.  [repeat]
          exceeds 1 only on cache-enabled configs, so warm re-iteration
          over leased state gets exercised under faults *)

type fault =
  | Crash of { node : int; at : float; recover_at : float }
  | Cut of { a : int; b : int; at : float; heal_at : float }
  | Partition of { groups : int list list; at : float; heal_at : float }
  | Herd of { at : float; clients : int; burst : int }
      (** thundering herd: [clients] fibers wake at [at] and each fires
          [burst] back-to-back size queries — a load spike, not a
          topology fault, so it has no heal time *)

type plan = {
  seed : int64;
  config : config;
  ops : op list;  (** time-sorted; [Iterate]s run sequentially *)
  faults : fault list;  (** time-sorted *)
  budget : float;
      (** virtual-time horizon: replicas and repair processes stop here,
          and every generated fault heals strictly before it *)
}

val shape_name : shape -> string

(** Virtual time of an op / fault's first effect. *)
val op_time : op -> float

val fault_time : fault -> float

(** Total number of schedule events (ops + faults) — the size the
    shrinker minimises. *)
val event_count : plan -> int

(** [generate seed] — the plan is a pure function of [seed]. *)
val generate : int64 -> plan

(** The config stream alone: equals [(generate seed).config] by stream
    independence. *)
val config_of_seed : int64 -> config

(** {1 JSON} *)

val plan_to_json : plan -> string

(** Inverse of {!plan_to_json} (also accepts any [Json.t] with the same
    fields). *)
val plan_of_json : Weakset_obs.Json.t -> (plan, string) result

val plan_of_string : string -> (plan, string) result
