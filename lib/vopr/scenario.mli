(** Table-driven cluster scenarios for the replicated directory group.

    A scenario is a row in a declarative table (TigerBeetle
    [replica_test.zig] style): named replicas [r0..r(n-1)], a virtual
    horizon, and a list of steps — faults over validated windows,
    deterministic client workload, and liveness probes.  The interpreter
    builds a clique of [replicas + 1] nodes (the extra one runs the
    client), hosts the directory on every replica, attaches a
    {!Weakset_repl.Group} member to each with one shared commit ledger,
    plays the steps, heals every fault [30s] before the horizon, and
    hands the ledger, each survivor's committed log and the probe
    results to {!Oracle.judge} as {!Oracle.repl_evidence}.

    Every run is seeded from the scenario name alone and executed
    {e twice}; a row passes only if the two event digests are
    byte-identical and the oracle finds no issues. *)

type step =
  | Stop of { node : int; at : float; recover_at : float }
      (** crash replica [node] at [at], recover it at [recover_at] *)
  | Crash of { node : int; at : float }
      (** crash with no scheduled recovery (the pre-horizon heal or an
          explicit {!Heal} brings it back) *)
  | Heal of { node : int; at : float }
  | Isolate of { node : int; at : float; heal_at : float }
      (** partition [node] away from everyone, heal all at [heal_at] *)
  | Partition of { groups : int list list; at : float; heal_at : float }
      (** unlisted nodes (including the client) form the leftover group *)
  | Workload of { at : float; until : float; every : float }
      (** deterministic client ops every [every]: two adds then a
          remove, every op effective when acked *)
  | Storm of { at : float; until : float; clients : int; every : float }
      (** a retry storm: [clients] retry-budgeted clients (each with its
          own {!Weakset_sim.Rng.split} jitter stream) hammer the
          coordinator every [every] — mostly reads, a mutation every
          fifth op, and every client's {e first} op a mutation so the
          opening burst sheds past the Mutate threshold.  Only
          meaningful with [admission] set *)
  | Probe_stable of { at : float }
      (** record whether the group has a stable leader (excused while
          not quorum-connected) — evidence for the oracle's
          view-change-liveness verdict *)

type t = {
  name : string;
  replicas : int;
  until : float;
  admission : int option;
      (** per-node admission-control capacity ({!Weakset_store.Node_server.admission});
          [None] runs without admission, preserving pre-admission digests *)
  steps : step list;
}

(** Raises [Invalid_argument] on out-of-range replica names, empty or
    inverted fault windows, or workload running past the heal margin. *)
val validate : t -> unit

type outcome = {
  o_name : string;
  o_digest : string;
  o_events : int;
  o_deterministic : bool;  (** both executions produced the same digest *)
  o_issues : Oracle.issue list;
  o_committed : int;  (** ledger length: ops acked as committed *)
  o_ops_ok : int;
  o_ops_failed : int;
}

val passed : outcome -> bool

(** [run scn] executes [scn] twice and judges it.  [planted] arms
    {!Weakset_repl.Group.planted_view_change_drop} for the duration —
    the commit-safety verdicts must then fire on any scenario that
    elects a new leader with traffic in flight.  [planted_shed] arms
    {!Weakset_store.Node_server.planted_shed_after_apply} — the oracle's
    shed-divergence verdict must then fire on any scenario that sheds a
    mutation (e.g. [retry-storm]). *)
val run : ?step_cap:int -> ?planted:bool -> ?planted_shed:bool -> t -> outcome

(** The shipped table (≥ 12 rows, all expected to pass unplanted). *)
val table : t list

val find : string -> t option
val pp_outcome : Format.formatter -> outcome -> unit
