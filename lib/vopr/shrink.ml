type stats = {
  runs : int;
  kept : int;
  initial_events : int;
  final_events : int;
}

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Halve a fault's active window.  Returns [None] once the window drops
   under one time unit — and never lets the heal touch the start, which
   would trip [Fault.schedule_partition]'s validation. *)
let shorten_fault f =
  let half ~at ~heal =
    let d = (heal -. at) /. 2.0 in
    if d < 0.5 then None else Some (at +. d)
  in
  match f with
  | Gen.Crash { node; at; recover_at } ->
      Option.map
        (fun recover_at -> Gen.Crash { node; at; recover_at })
        (half ~at ~heal:recover_at)
  | Gen.Cut { a; b; at; heal_at } ->
      Option.map (fun heal_at -> Gen.Cut { a; b; at; heal_at }) (half ~at ~heal:heal_at)
  | Gen.Partition { groups; at; heal_at } ->
      Option.map (fun heal_at -> Gen.Partition { groups; at; heal_at }) (half ~at ~heal:heal_at)
  (* A herd has no window; its size is the spike itself, so halve that. *)
  | Gen.Herd { at; clients; burst } ->
      if clients <= 1 && burst <= 1 then None
      else
        Some
          (Gen.Herd
             { at; clients = max 1 ((clients + 1) / 2); burst = max 1 ((burst + 1) / 2) })

let minimize ?(max_runs = 200) ~run ~issues plan =
  if issues = [] then invalid_arg "Vopr.Shrink.minimize: issue list is empty";
  let runs = ref 0 and kept = ref 0 in
  let current = ref plan and current_issues = ref issues in
  (* Keep a candidate iff it still fails with an overlapping category —
     the original verdict is the fixed target, so shrinking cannot drift
     onto an unrelated failure. *)
  let try_candidate cand =
    incr runs;
    let cand_issues = run cand in
    if cand_issues <> [] && Oracle.same_failure issues cand_issues then begin
      incr kept;
      current := cand;
      current_issues := cand_issues;
      true
    end
    else false
  in
  let budget_left () = !runs < max_runs in
  let progress = ref true in
  while !progress && budget_left () do
    progress := false;
    (* Pass 1: drop workload ops one at a time.  On success the same
       index now names the next op, so only advance on failure. *)
    let i = ref 0 in
    while !i < List.length !current.Gen.ops && budget_left () do
      let p = !current in
      if try_candidate { p with Gen.ops = drop_nth p.Gen.ops !i } then progress := true
      else incr i
    done;
    (* Pass 2: drop fault events one at a time. *)
    let i = ref 0 in
    while !i < List.length !current.Gen.faults && budget_left () do
      let p = !current in
      if try_candidate { p with Gen.faults = drop_nth p.Gen.faults !i } then progress := true
      else incr i
    done;
    (* Pass 3: shorten fault windows.  A success re-tries the same fault
       (halving again); shortening bottoms out below one time unit. *)
    let i = ref 0 in
    while !i < List.length !current.Gen.faults && budget_left () do
      let p = !current in
      let kept_one =
        match shorten_fault (List.nth p.Gen.faults !i) with
        | None -> false
        | Some f' ->
            try_candidate
              { p with Gen.faults = List.mapi (fun j f -> if j = !i then f' else f) p.Gen.faults }
      in
      if kept_one then progress := true else incr i
    done
  done;
  ( !current,
    !current_issues,
    {
      runs = !runs;
      kept = !kept;
      initial_events = Gen.event_count plan;
      final_events = Gen.event_count !current;
    } )
