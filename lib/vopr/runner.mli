(** Executes generated plans in the deterministic simulator, judges them,
    sweeps seed ranges and reads/writes replayable repro bundles.

    A plan executes in a fresh engine seeded with the plan's seed: the
    topology is built from the config (coordinator at index 0, client
    last, homes in between, ghost-copy directory policy so grow-only runs
    are well-posed), the fault schedule is installed through the
    {!Weakset_net.Fault} scheduled API — the same code path hand-written
    scenarios use — and two driver fibers walk the workload: a mutator
    for add/remove/size (honouring the write lock iff the plan contains
    an immutable iteration) and a sequential iteration driver that runs
    every [Iterate] with full spec instrumentation plus an online monitor
    attached to the bus.  The whole run streams into a chained
    {!Weakset_obs.Digest}, whose final value fingerprints the run:
    re-executing the same plan must reproduce it byte-identically. *)

type result = {
  plan : Gen.plan;
  digest : string;  (** chained digest of the full event stream *)
  events : int;  (** events fed to the digest *)
  steps : int;  (** engine events processed *)
  issues : Oracle.issue list;  (** empty = run passed *)
  iterations : Oracle.iteration_input list;
      (** every instrumented iteration with its recorded computation and
          chosen spec — the raw material the oracle judged, exposed so
          equivalence suites can re-judge the same runs under other
          checkers *)
  blackbox : Weakset_obs.Flight.dump list;
      (** flight-recorder dumps the run triggered (spec violations and
          node crashes mid-run, plus one post-run oracle verdict when the
          run failed), oldest first; deterministic per plan *)
}

(** Default step cap (events processed) before a run is declared a
    livelock. *)
val default_step_cap : int

val execute : ?step_cap:int -> Gen.plan -> result

(** [sweep ?step_cap ?progress seeds] generates and executes one plan per
    seed, calling [progress] after each. *)
val sweep :
  ?step_cap:int -> ?progress:(int64 -> result -> unit) -> int64 list -> (int64 * result) list

(** {1 Repro bundles} *)

type bundle = {
  b_plan : Gen.plan;
  b_planted : bool;
      (** was {!Weakset_core.Impl_common.planted_grow_only_drop} armed when
          this bundle was recorded?  {!replay} restores it for the rerun. *)
  b_planted_cache : bool;
      (** likewise for {!Weakset_store.Cache.planted_inval_drop} *)
  b_planted_spec : bool;
      (** likewise for {!Weakset_spec.Visibility.planted_axiom_mutation}
          (absent in older bundles; parses as [false]) *)
  b_digest : string;  (** expected trace digest of replaying [b_plan] *)
  b_events : int;
  b_issues : Oracle.issue list;  (** the recorded oracle verdict *)
  b_blackbox : string list;
      (** black-box dump documents captured at record time (see
          {!Weakset_obs.Flight}); embedded as escaped JSON strings so
          they round-trip byte-exactly.  Replays regenerate identical
          dumps, so they are not part of the replay comparison.  Absent
          in older bundles; parses as [[]]. *)
}

val bundle_of_result : result -> bundle
val bundle_to_json : bundle -> string
val bundle_of_string : string -> (bundle, string) Stdlib.result
val write_bundle : path:string -> bundle -> unit
val read_bundle : path:string -> (bundle, string) Stdlib.result

(** Re-execute a bundle's plan and compare against its recorded digest
    and verdict.  [`Reproduced] means digest, event count and failure
    categories all match. *)
type replay_outcome =
  | Reproduced of result
  | Digest_mismatch of { got : result; expected : string }
  | Verdict_mismatch of result

val replay : ?step_cap:int -> bundle -> replay_outcome
