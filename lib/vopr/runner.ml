module Engine = Weakset_sim.Engine
module Rng = Weakset_sim.Rng
module Arrival = Weakset_load.Arrival
module Topology = Weakset_net.Topology
module Fault = Weakset_net.Fault
module Rpc = Weakset_net.Rpc
module Node_server = Weakset_store.Node_server
module Directory = Weakset_store.Directory
module Version = Weakset_store.Version
module Client = Weakset_store.Client
module Cache = Weakset_store.Cache
module Oid = Weakset_store.Oid
module Svalue = Weakset_store.Svalue
module Protocol = Weakset_store.Protocol
module Semantics = Weakset_core.Semantics
module Weak_set = Weakset_core.Weak_set
module Iterator = Weakset_core.Iterator
module Instrument = Weakset_core.Instrument
module Monitor_online = Weakset_spec.Monitor_online
module Figures = Weakset_spec.Figures
module Bus = Weakset_obs.Bus
module Event = Weakset_obs.Event
module Digest = Weakset_obs.Digest
module Json = Weakset_obs.Json
module Flight = Weakset_obs.Flight

type result = {
  plan : Gen.plan;
  digest : string;
  events : int;
  steps : int;
  issues : Oracle.issue list;
  iterations : Oracle.iteration_input list;
  blackbox : Flight.dump list;
}

let default_step_cap = 1_000_000
let set_id = 1

(* ------------------------------------------------------------------ *)
(* Plan validation (fail fast with a message instead of mid-sim)       *)
(* ------------------------------------------------------------------ *)

let link_exists shape n a b =
  a <> b && a >= 0 && b >= 0 && a < n && b < n
  &&
  match shape with
  | Gen.Clique -> true
  | Gen.Star -> a = 0 || b = 0
  | Gen.Line -> abs (a - b) = 1

let validate plan =
  let c = plan.Gen.config in
  let n = c.Gen.nodes in
  if n < 4 then invalid_arg "Vopr.Runner: config.nodes must be >= 4";
  List.iter
    (fun ix ->
      if ix < 1 || ix > n - 2 then
        invalid_arg (Printf.sprintf "Vopr.Runner: replica index %d is not a home node" ix))
    c.Gen.replica_ixs;
  List.iter
    (function
      | Gen.Iterate { semantics; _ } when not (List.mem_assoc semantics Semantics.all) ->
          invalid_arg (Printf.sprintf "Vopr.Runner: unknown semantics %S" semantics)
      | _ -> ())
    plan.Gen.ops;
  List.iter
    (function
      | Gen.Crash { node; _ } ->
          if node < 1 || node > n - 2 then
            invalid_arg (Printf.sprintf "Vopr.Runner: crash target %d is not a home node" node)
      | Gen.Cut { a; b; _ } ->
          if not (link_exists c.Gen.shape n a b) then
            invalid_arg (Printf.sprintf "Vopr.Runner: no link %d-%d in this topology" a b)
      | Gen.Partition { groups; _ } ->
          List.iter
            (List.iter (fun ix ->
                 if ix < 0 || ix >= n then
                   invalid_arg (Printf.sprintf "Vopr.Runner: partition node %d out of range" ix)))
            groups
      | Gen.Herd { clients; burst; _ } ->
          if clients < 1 || burst < 1 then
            invalid_arg "Vopr.Runner: herd clients and burst must be >= 1")
    plan.Gen.faults;
  (match c.Gen.open_loop with
  | Some { Gen.ol_rate; ol_clients; _ } ->
      if ol_rate <= 0.0 || ol_clients < 1 then
        invalid_arg "Vopr.Runner: open_loop rate must be positive and clients >= 1"
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

type iter_record = {
  ir_index : int;
  ir_semantics : string;
  ir_spec : Figures.spec;
  ir_online : Monitor_online.t;
  mutable ir_outcome : [ `Done | `Failed of string | `Limit | `Unfinished ];
  mutable ir_computation : Weakset_spec.Computation.t option;
  mutable ir_finished : bool;
}

(* The spec each iteration is judged against: the paper figure of its
   semantics; Figure 1 when the plan injects no faults at all; the §3.4
   window relaxation when reading possibly-stale replicas (ablation A1
   showed literal Figure 6 is the wrong judge for those) — and likewise
   for any optimistic run racing removals, where a remove landing between
   the membership read an invocation linearises on and its yield makes
   literal Figure 6's current-vintage clause unsatisfiable (the repo's
   own integration suite judges that combination against the window
   spec). *)
let spec_for plan sem =
  let has_removes = List.exists (function Gen.Remove _ -> true | _ -> false) plan.Gen.ops in
  (* The linearizable iterator pins its snapshot with uncached
     authoritative reads, so neither the lease cache nor stale replicas
     weaken what it promises: always judge it against the lin spec. *)
  if sem.Semantics.linearizable then Figures.lin
  (* A lease cache makes every membership read potentially (boundedly)
     stale — exactly the situation the §3.4 window relaxation models, so
     cache-enabled plans are always judged against it.  Whether the
     staleness stayed within its lease is the cache oracle's separate,
     stricter question. *)
  else if plan.Gen.config.Gen.cache then Semantics.window_spec_of sem
  else if sem.Semantics.read_nearest_replica then Semantics.window_spec_of sem
  else if sem.Semantics.failure_handling = Semantics.Optimistic && has_removes then
    Semantics.window_spec_of sem
  else Semantics.spec_of ~no_failures:(plan.Gen.faults = []) sem

let execute ?(step_cap = default_step_cap) plan =
  validate plan;
  let c = plan.Gen.config in
  let n = c.Gen.nodes in
  let eng = Engine.create ~seed:plan.Gen.seed () in
  let bus = Engine.bus eng in
  let digest = Digest.create () in
  Bus.attach bus ~name:"vopr-digest" (Digest.sink digest);
  (* Always-on black box: triggers itself on spec violations and node
     crashes during the run; the oracle adds a post-run verdict trigger.
     Ring capacity is modest — dumps ride inside repro bundles. *)
  let flight = Flight.create ~capacity:256 ~debounce:100.0 bus in
  let rpc_calls = ref 0 and rpc_dones = ref 0 in
  (* Track which fibers are still alive, by name, so a leak verdict can
     say who leaked.  A fiber is alive from Fiber_spawn until a Run_end
     whose park is Park_done/Park_crash. *)
  let fiber_state : (int, string) Hashtbl.t = Hashtbl.create 32 in
  Bus.attach bus ~name:"vopr-rpc" (fun ev ->
      match ev.Event.kind with
      | Event.Rpc_call _ -> incr rpc_calls
      | Event.Rpc_done _ -> incr rpc_dones
      | Event.Fiber_spawn { fid; fiber } -> Hashtbl.replace fiber_state fid fiber
      | Event.Run_end { fid; park = Event.Park_done | Event.Park_crash; _ } ->
          Hashtbl.remove fiber_state fid
      | _ -> ());
  let topo = Topology.create () in
  let nodes =
    match c.Gen.shape with
    | Gen.Clique -> Topology.clique topo n ~latency:c.Gen.latency
    | Gen.Star ->
        let hub, leaves = Topology.star topo (n - 1) ~latency:c.Gen.latency in
        Array.append [| hub |] leaves
    | Gen.Line -> Topology.line topo n ~latency:c.Gen.latency
  in
  let rpc = Rpc.create eng topo in
  let servers =
    Array.map (fun node -> Node_server.create ~lease_ttl:c.Gen.lease_ttl rpc node) nodes
  in
  let fault = Fault.create eng topo in
  (* Ghost-copy policy unconditionally: it only defers removals while
     grow-only iterators are registered, and without it a grow-only run
     concurrent with removals violates its own type constraint — an
     environment bug, not an implementation bug. *)
  Node_server.host_directory servers.(0) ~set_id
    ~policy:Node_server.Defer_removes_while_iterating;
  List.iter
    (fun ix ->
      Node_server.host_replica servers.(ix) ~set_id ~of_:nodes.(0)
        ~interval:c.Gen.replica_interval ~until:plan.Gen.budget)
    c.Gen.replica_ixs;
  (* The iterating client is the (only) lease-cache holder when the plan
     enables caching.  The mutator gets its own uncached client: sharing
     would let read-your-writes self-invalidation mask a broken wire
     callback — exactly the bug class the cache oracle exists to catch. *)
  let client =
    if c.Gen.cache then
      Client.create ~cache:{ Cache.capacity = 256; ttl = c.Gen.lease_ttl } rpc nodes.(n - 1)
    else Client.create rpc nodes.(n - 1)
  in
  let mut_client = Client.create rpc nodes.(n - 1) in
  let sref =
    {
      Protocol.set_id;
      coordinator = nodes.(0);
      replicas = List.map (fun ix -> nodes.(ix)) c.Gen.replica_ixs;
    }
  in
  (* Seed membership. *)
  let next_num = ref 0 in
  let homes = n - 2 in
  let fresh_member () =
    incr next_num;
    let home_ix = 1 + (!next_num mod homes) in
    let oid = Oid.make ~num:!next_num ~home:nodes.(home_ix) in
    Node_server.put_object servers.(home_ix) oid
      (Svalue.make (Printf.sprintf "element-%d" !next_num));
    oid
  in
  for _ = 1 to c.Gen.initial_size do
    let oid = fresh_member () in
    ignore (Directory.apply (Node_server.directory_truth servers.(0) ~set_id) (Directory.Add oid))
  done;
  (* Cache-coherence evidence: the coordinator's mutation log (time and
     resulting version) and every directory cache hit the bus carries.
     Both feed the oracle's stale-beyond-lease rule. *)
  let mutation_log = ref [] in
  let cache_hits = ref [] in
  if c.Gen.cache then begin
    let truth = Node_server.directory_truth servers.(0) ~set_id in
    let (_ : unit -> unit) =
      Node_server.on_directory_mutation servers.(0) ~set_id (fun _op ->
          mutation_log :=
            (Engine.now eng, Version.to_int (Directory.version truth)) :: !mutation_log)
    in
    Bus.attach bus ~name:"vopr-cache" (fun ev ->
        match ev.Event.kind with
        | Event.Cache_hit { ckind = Event.Cache_dir; id; version; age; _ } ->
            cache_hits :=
              { Oracle.h_time = ev.Event.time; h_set = id; h_version = version; h_age = age }
              :: !cache_hits
        | _ -> ())
  end;
  (* Background-load traffic (open-loop arrivals and thundering herds)
     reads through its own uncached client: authoritative size queries
     that stress the coordinator without touching the lease cache the
     oracle is watching.  Lazy so plans without either knob build the
     exact same world as before. *)
  let bg_handle =
    lazy (Weak_set.make (Client.create rpc nodes.(n - 1)) sref Semantics.optimistic)
  in
  (* Fault schedule, through the Fault scheduled API (the code path
     hand-written scenarios use). *)
  List.iter
    (function
      | Gen.Crash { node; at; recover_at } ->
          Fault.schedule_crash fault ~at nodes.(node);
          Fault.schedule_recover fault ~at:recover_at nodes.(node)
      | Gen.Cut { a; b; at; heal_at } ->
          Engine.schedule eng ~after:at (fun () -> Fault.cut_link fault nodes.(a) nodes.(b));
          Engine.schedule eng ~after:heal_at (fun () ->
              Fault.heal_link fault nodes.(a) nodes.(b))
      | Gen.Partition { groups; at; heal_at } ->
          Fault.schedule_partition fault ~at ~heal_at
            (List.map (List.map (fun ix -> nodes.(ix))) groups)
      | Gen.Herd { at; clients; burst } ->
          (* A load spike, not a topology fault: [clients] fibers wake
             together and each fires [burst] back-to-back size queries.
             Every query completes once links heal, so the run still
             quiesces. *)
          for h = 0 to clients - 1 do
            Engine.spawn eng ~name:(Printf.sprintf "vopr-herd.%d" h) (fun () ->
                let now = Engine.now eng in
                if at > now then Engine.sleep eng (at -. now);
                for _ = 1 to burst do
                  ignore (Weak_set.size (Lazy.force bg_handle))
                done)
          done)
    plan.Gen.faults;
  (* Open-loop background arrivals: size queries on their own clock,
     dealt round-robin across [ol_clients] fibers.  The tick stream is
     the fourth split of the plan seed — independent of the config,
     workload and fault streams, so a bundle replay reproduces it
     exactly without storing the ticks. *)
  (match c.Gen.open_loop with
  | None -> ()
  | Some { Gen.ol_rate; ol_clients; ol_bursty } ->
      let olrng =
        let root = Rng.create plan.Gen.seed in
        let (_ : Rng.t) = Rng.split root in
        let (_ : Rng.t) = Rng.split root in
        let (_ : Rng.t) = Rng.split root in
        Rng.split root
      in
      let arrival =
        if ol_bursty then Arrival.Bursty { rate = ol_rate; burst_mean = 4.0 }
        else Arrival.Poisson { rate = ol_rate }
      in
      (* budget = workload horizon + 60 by construction: stop arrivals
         at the horizon so the tail drains well inside the budget. *)
      let until = Float.max 1.0 (plan.Gen.budget -. 60.0) in
      let ticks = Arrival.ticks arrival ~rng:olrng ~until in
      let qs = Array.make ol_clients [] in
      List.iteri (fun i t -> qs.(i mod ol_clients) <- t :: qs.(i mod ol_clients)) ticks;
      Array.iteri
        (fun i q ->
          let schedule = List.rev q in
          if schedule <> [] then
            Engine.spawn eng ~name:(Printf.sprintf "vopr-openloop.%d" i) (fun () ->
                List.iter
                  (fun tick ->
                    let now = Engine.now eng in
                    if tick > now then Engine.sleep eng (tick -. now);
                    ignore (Weak_set.size (Lazy.force bg_handle)))
                  schedule))
        qs);
  (* Mutator driver: add/remove/size at their scheduled times.  When the
     plan contains an immutable iteration, every mutation must honour the
     write lock (§3.1) — the handle's semantics enforces that. *)
  let mutator_ops =
    List.filter (function Gen.Iterate _ -> false | _ -> true) plan.Gen.ops
  in
  let has_immutable =
    List.exists
      (function Gen.Iterate { semantics = "immutable"; _ } -> true | _ -> false)
      plan.Gen.ops
  in
  let mutator_sem = if has_immutable then Semantics.immutable else Semantics.optimistic in
  if mutator_ops <> [] then begin
    let handle = Weak_set.make mut_client sref mutator_sem in
    Engine.spawn eng ~name:"vopr-mutator" (fun () ->
        List.iter
          (fun op ->
            let at = Gen.op_time op in
            let now = Engine.now eng in
            if at > now then Engine.sleep eng (at -. now);
            match op with
            | Gen.Add _ ->
                let oid = fresh_member () in
                ignore (Weak_set.add handle oid)
            | Gen.Remove _ -> (
                let truth = Node_server.directory_truth servers.(0) ~set_id in
                match Oid.Set.min_elt_opt (Directory.members truth) with
                | Some victim -> ignore (Weak_set.remove handle victim)
                | None -> ())
            | Gen.Size _ -> ignore (Weak_set.size handle)
            | Gen.Iterate _ -> ())
          mutator_ops)
  end;
  (* Iteration driver: every Iterate runs sequentially, instrumented,
     with an online conformance monitor attached for its duration. *)
  let iter_ops =
    List.filter (function Gen.Iterate _ -> true | _ -> false) plan.Gen.ops
  in
  let records = ref [] in
  if iter_ops <> [] then
    Engine.spawn eng ~name:"vopr-iter" (fun () ->
        List.iteri
          (fun i op ->
            match op with
            | Gen.Iterate { at; semantics; think; limit; repeat } ->
                let now = Engine.now eng in
                if at > now then Engine.sleep eng (at -. now);
                let sem = List.assoc semantics Semantics.all in
                let spec = spec_for plan sem in
                (* [repeat] > 1 re-runs the same iteration back to back:
                   on cache-enabled plans the later passes read leased
                   state warm, which is the path the cache oracle wants
                   to see exercised under faults. *)
                for rep = 1 to max 1 repeat do
                  if rep > 1 then Engine.sleep eng (Float.max 1.0 think);
                  let online = Monitor_online.create ~bus ~set_id spec in
                  Bus.attach bus ~name:"vopr-online" (Monitor_online.sink online);
                  let r =
                    {
                      ir_index = i;
                      ir_semantics = semantics;
                      ir_spec = spec;
                      ir_online = online;
                      ir_outcome = `Unfinished;
                      ir_computation = None;
                      ir_finished = false;
                    }
                  in
                  records := r :: !records;
                  let set =
                    Weak_set.make ~heal_signal:(Fault.signal fault)
                      ~coordinator_server:servers.(0) client sref sem
                  in
                  let iter, inst = Weak_set.elements ~instrument:true set in
                  r.ir_computation <- Option.map Instrument.computation inst;
                  let rec loop yields =
                    if yields >= limit then `Limit
                    else
                      match Iterator.next iter with
                      | Iterator.Yield _ ->
                          if think > 0.0 then Engine.sleep eng think;
                          loop (yields + 1)
                      | Iterator.Done -> `Done
                      | Iterator.Failed e -> `Failed (Client.error_to_string e)
                  in
                  let outcome = loop 0 in
                  Iterator.close iter;
                  Bus.detach bus ~name:"vopr-online";
                  let (_ : Figures.verdict) =
                    Monitor_online.finish online ~time:(Engine.now eng)
                  in
                  r.ir_finished <- true;
                  r.ir_outcome <- outcome
                done
            | _ -> ())
          iter_ops)
  ;
  let steps = Engine.run ~max_steps:step_cap eng in
  (* Iterations still open (stuck or cut off by the step cap): close the
     books so the oracle can judge what was recorded. *)
  List.iter
    (fun r ->
      if not r.ir_finished then begin
        let (_ : Figures.verdict) = Monitor_online.finish r.ir_online ~time:(Engine.now eng) in
        r.ir_finished <- true
      end)
    !records;
  let iterations =
    List.rev_map
      (fun r ->
        {
          Oracle.index = r.ir_index;
          semantics = r.ir_semantics;
          faulty = plan.Gen.faults <> [];
          spec = r.ir_spec;
          outcome = r.ir_outcome;
          computation =
            (match r.ir_computation with
            | Some comp -> comp
            | None -> Weakset_spec.Computation.create ());
          online_violations = Monitor_online.violations r.ir_online;
        })
      !records
  in
  let engine_crashes =
    List.map
      (fun c -> (c.Engine.crash_fiber, Printexc.to_string c.Engine.crash_exn))
      (Engine.crashes eng)
  in
  let parked_fibers =
    if Engine.live_fibers eng = 0 then []
    else Hashtbl.fold (fun _ name acc -> name :: acc) fiber_state [] |> List.sort compare
  in
  let cache_evidence =
    if not c.Gen.cache then None
    else
      (* How long an Inval can legitimately be in flight: the topology
         diameter's worth of link latency with headroom, plus a constant
         for service time on either end. *)
      let hops =
        match c.Gen.shape with Gen.Clique -> 1 | Gen.Star -> 2 | Gen.Line -> n - 1
      in
      let inval_grace = (float_of_int hops *. c.Gen.latency *. 1.5) +. 1.0 in
      let fault_windows =
        List.filter_map
          (function
            | Gen.Crash { at; recover_at; _ } -> Some (at, recover_at)
            | Gen.Cut { at; heal_at; _ } -> Some (at, heal_at)
            | Gen.Partition { at; heal_at; _ } -> Some (at, heal_at)
            (* A herd delays invals by queueing, it never severs links —
               the stale-beyond-lease rule gets no grace window for it. *)
            | Gen.Herd _ -> None)
          plan.Gen.faults
      in
      Some
        {
          Oracle.hits = List.rev !cache_hits;
          mutations = List.rev !mutation_log;
          lease_ttl = c.Gen.lease_ttl;
          inval_grace;
          fault_windows;
        }
  in
  let issues =
    Oracle.judge
      {
        Oracle.iterations;
        engine_crashes;
        parked_fibers;
        steps;
        step_cap;
        unmatched_rpcs = !rpc_calls - !rpc_dones;
        cache = cache_evidence;
        (* Random VOPR plans do not deploy a replication group; the
           table-driven cluster scenarios (Scenario) build this. *)
        repl = None;
      }
  in
  (* One post-run trigger for the whole verdict (the first issue names
     the incident); mid-run violations already dumped with hot rings, and
     the debounce keeps this from double-dumping the same incident. *)
  (match issues with
  | [] -> ()
  | issue :: _ ->
      Flight.trigger flight ~time:(Engine.now eng)
        (Flight.Oracle_verdict
           { category = Oracle.category issue; detail = Oracle.describe issue }));
  {
    plan;
    digest = Digest.value digest;
    events = Digest.count digest;
    steps;
    issues;
    iterations;
    blackbox = Flight.dumps flight;
  }

let sweep ?step_cap ?(progress = fun _ _ -> ()) seeds =
  List.map
    (fun seed ->
      let r = execute ?step_cap (Gen.generate seed) in
      progress seed r;
      (seed, r))
    seeds

(* ------------------------------------------------------------------ *)
(* Repro bundles                                                      *)
(* ------------------------------------------------------------------ *)

type bundle = {
  b_plan : Gen.plan;
  b_planted : bool;
  b_planted_cache : bool;
  b_planted_spec : bool;
  b_digest : string;
  b_events : int;
  b_issues : Oracle.issue list;
  b_blackbox : string list;
}

let bundle_of_result r =
  {
    b_plan = r.plan;
    b_planted = !Weakset_core.Impl_common.planted_grow_only_drop;
    b_planted_cache = !Cache.planted_inval_drop;
    b_planted_spec = !Weakset_spec.Visibility.planted_axiom_mutation;
    b_digest = r.digest;
    b_events = r.events;
    b_issues = r.issues;
    b_blackbox = List.map (fun d -> d.Flight.d_json) r.blackbox;
  }

(* Dumps are embedded as JSON *strings* (escaped), not nested documents,
   so a bundle round-trips them byte-exactly through our writer-less
   JSON reader. *)
let bundle_to_json b =
  Printf.sprintf
    {|{"version":1,"planted_bug":%b,"planted_cache_bug":%b,"planted_spec_bug":%b,"plan":%s,"digest":"%s","events":%d,"issues":[%s],"blackbox":[%s]}|}
    b.b_planted b.b_planted_cache b.b_planted_spec (Gen.plan_to_json b.b_plan) b.b_digest
    b.b_events
    (String.concat "," (List.map Oracle.issue_to_json b.b_issues))
    (String.concat ","
       (List.map
          (fun d -> Printf.sprintf {|"%s"|} (Event.json_escape d))
          b.b_blackbox))

let ( let* ) = Result.bind

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let bundle_of_string s =
  match Json.of_string_opt s with
  | None -> Error "malformed JSON"
  | Some j ->
      let* plan_j =
        match Json.member "plan" j with Some p -> Ok p | None -> Error "missing field \"plan\""
      in
      let* plan = Gen.plan_of_json plan_j in
      let* digest =
        match Option.bind (Json.member "digest" j) Json.to_string with
        | Some d -> Ok d
        | None -> Error "missing field \"digest\""
      in
      let* events =
        match Option.bind (Json.member "events" j) Json.to_int with
        | Some e -> Ok e
        | None -> Error "missing field \"events\""
      in
      let* issues =
        match Option.bind (Json.member "issues" j) Json.to_list with
        | Some l -> map_result Oracle.issue_of_json l
        | None -> Error "missing field \"issues\""
      in
      let planted =
        match Json.member "planted_bug" j with Some (Json.Bool b) -> b | _ -> false
      in
      let planted_cache =
        match Json.member "planted_cache_bug" j with Some (Json.Bool b) -> b | _ -> false
      in
      (* Absent in bundles written before the parametric checker existed:
         default to unarmed. *)
      let planted_spec =
        match Json.member "planted_spec_bug" j with Some (Json.Bool b) -> b | _ -> false
      in
      (* Absent in bundles written before the flight recorder existed. *)
      let blackbox =
        match Json.member "blackbox" j with
        | Some (Json.Arr l) -> List.filter_map Json.to_string l
        | _ -> []
      in
      Ok
        {
          b_plan = plan;
          b_planted = planted;
          b_planted_cache = planted_cache;
          b_planted_spec = planted_spec;
          b_digest = digest;
          b_events = events;
          b_issues = issues;
          b_blackbox = blackbox;
        }

let write_bundle ~path b =
  let oc = open_out path in
  output_string oc (bundle_to_json b);
  output_char oc '\n';
  close_out oc

let read_bundle ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | s -> bundle_of_string s

type replay_outcome =
  | Reproduced of result
  | Digest_mismatch of { got : result; expected : string }
  | Verdict_mismatch of result

(* The bundle records whether the planted bug was armed at record time,
   so a replay in a fresh process reproduces the same binary behaviour. *)
let replay ?step_cap b =
  let flag = Weakset_core.Impl_common.planted_grow_only_drop in
  let cflag = Cache.planted_inval_drop in
  let sflag = Weakset_spec.Visibility.planted_axiom_mutation in
  let saved = !flag and csaved = !cflag and ssaved = !sflag in
  flag := b.b_planted;
  cflag := b.b_planted_cache;
  sflag := b.b_planted_spec;
  let got =
    Fun.protect
      ~finally:(fun () ->
        flag := saved;
        cflag := csaved;
        sflag := ssaved)
      (fun () -> execute ?step_cap b.b_plan)
  in
  if got.digest <> b.b_digest || got.events <> b.b_events then
    Digest_mismatch { got; expected = b.b_digest }
  else
    let matches =
      match (b.b_issues, got.issues) with
      | [], [] -> true
      | recorded, now -> Oracle.same_failure recorded now
    in
    if matches then Reproduced got else Verdict_mismatch got
