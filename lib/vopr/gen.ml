module Rng = Weakset_sim.Rng
module Json = Weakset_obs.Json

type shape = Clique | Star | Line

type open_loop = { ol_rate : float; ol_clients : int; ol_bursty : bool }

type config = {
  shape : shape;
  nodes : int;
  latency : float;
  replica_ixs : int list;
  replica_interval : float;
  initial_size : int;
  cache : bool;
  lease_ttl : float;
  open_loop : open_loop option;
}

type op =
  | Add of { at : float }
  | Remove of { at : float }
  | Size of { at : float }
  | Iterate of { at : float; semantics : string; think : float; limit : int; repeat : int }

type fault =
  | Crash of { node : int; at : float; recover_at : float }
  | Cut of { a : int; b : int; at : float; heal_at : float }
  | Partition of { groups : int list list; at : float; heal_at : float }
  | Herd of { at : float; clients : int; burst : int }

type plan = {
  seed : int64;
  config : config;
  ops : op list;
  faults : fault list;
  budget : float;
}

let shape_name = function Clique -> "clique" | Star -> "star" | Line -> "line"

let shape_of_name = function
  | "clique" -> Some Clique
  | "star" -> Some Star
  | "line" -> Some Line
  | _ -> None

let op_time = function
  | Add { at } | Remove { at } | Size { at } -> at
  | Iterate { at; _ } -> at

let fault_time = function
  | Crash { at; _ } | Cut { at; _ } | Partition { at; _ } | Herd { at; _ } -> at

let event_count plan = List.length plan.ops + List.length plan.faults

(* ------------------------------------------------------------------ *)
(* Generation                                                         *)
(* ------------------------------------------------------------------ *)

let gen_config rng =
  let shape =
    let r = Rng.float rng 1.0 in
    if r < 0.5 then Clique else if r < 0.75 then Star else Line
  in
  let nodes = 5 + Rng.int rng 5 in
  let latency = Rng.uniform rng 0.5 2.0 in
  let homes = nodes - 2 in
  let replica_ix = 1 + Rng.int rng homes in
  let replica_ixs = if Rng.chance rng 0.3 then [ replica_ix ] else [] in
  let replica_interval = Rng.uniform rng 5.0 20.0 in
  let initial_size = 4 + Rng.int rng 9 in
  (* Both draws always happen, so flipping the cache knob never shifts
     the rest of the config stream. *)
  let cache = Rng.chance rng 0.6 in
  let lease_ttl = Rng.uniform rng 10.0 40.0 in
  (* Open-loop background arrivals (appended last, every draw always
     happens): existing seeds keep their exact config prefix, and
     flipping the knob never shifts the stream. *)
  let ol_on = Rng.chance rng 0.25 in
  let ol_rate = Rng.uniform rng 0.1 1.5 in
  let ol_clients = 2 + Rng.int rng 6 in
  let ol_bursty = Rng.chance rng 0.25 in
  let open_loop = if ol_on then Some { ol_rate; ol_clients; ol_bursty } else None in
  {
    shape;
    nodes;
    latency;
    replica_ixs;
    replica_interval;
    initial_size;
    cache;
    lease_ttl;
    open_loop;
  }

(* Weighted semantics mix; stale-replica reads only make sense when the
   config placed a replica. *)
let pick_semantics rng ~with_stale =
  let r = Rng.float rng 1.0 in
  if r < 0.15 then "immutable"
  else if r < 0.30 then "snapshot"
  else if r < 0.65 then "grow-only"
  else if r < 0.73 then "lin"
  else if with_stale && r > 0.92 then "optimistic-stale"
  else "optimistic"

let sort_ops ops = List.stable_sort (fun a b -> Float.compare (op_time a) (op_time b)) ops

let gen_ops rng config ~horizon =
  let n_mut = 6 + Rng.int rng 18 in
  let muts =
    List.init n_mut (fun _ ->
        let at = 1.0 +. Rng.float rng (horizon -. 10.0) in
        let r = Rng.float rng 1.0 in
        if r < 0.5 then Add { at } else if r < 0.8 then Remove { at } else Size { at })
  in
  let n_adds =
    List.length (List.filter (function Add _ -> true | _ -> false) muts)
  in
  let with_stale = config.replica_ixs <> [] in
  let n_iter = 1 + Rng.int rng 3 in
  let iters =
    List.init n_iter (fun _ ->
        let at = 1.0 +. Rng.float rng (horizon -. 10.0) in
        let semantics = pick_semantics rng ~with_stale in
        let think = Rng.uniform rng 0.2 2.0 in
        (* Warm re-iteration only matters with a cache; the draw still
           always happens so the knob doesn't shift the stream. *)
        let again = Rng.chance rng 0.6 in
        let repeat = if config.cache && again then 2 else 1 in
        Iterate { at; semantics; think; limit = config.initial_size + n_adds + 8; repeat })
  in
  sort_ops (muts @ iters)

(* A uniformly random two-way split of the node indexes (both groups
   non-empty, each sorted for stable rendering). *)
let random_split rng n =
  let ixs = Array.init n (fun i -> i) in
  Rng.shuffle rng ixs;
  let cut = 1 + Rng.int rng (n - 1) in
  let group a len = List.sort compare (Array.to_list (Array.sub a 0 len)) in
  [ group ixs cut; List.sort compare (Array.to_list (Array.sub ixs cut (n - cut))) ]

let gen_link rng config =
  let n = config.nodes in
  match config.shape with
  | Clique ->
      let a = Rng.int rng n in
      let b =
        let b = Rng.int rng (n - 1) in
        if b >= a then b + 1 else b
      in
      (min a b, max a b)
  | Star -> (0, 1 + Rng.int rng (n - 1))
  | Line ->
      let i = Rng.int rng (n - 1) in
      (i, i + 1)

let gen_faults rng config ~horizon =
  let n = Rng.int rng 4 in
  let faults =
    List.init n (fun _ ->
        let at = 2.0 +. Rng.float rng (horizon -. 7.0) in
        let dur = Float.min 40.0 (Float.max 1.0 (Rng.exponential rng ~mean:12.0)) in
        let r = Rng.float rng 1.0 in
        if r < 0.4 then
          let node = 1 + Rng.int rng (config.nodes - 2) in
          Crash { node; at; recover_at = at +. dur }
        else if r < 0.8 then
          Partition { groups = random_split rng config.nodes; at; heal_at = at +. dur }
        else
          let a, b = gen_link rng config in
          Cut { a; b; at; heal_at = at +. dur })
  in
  (* Thundering herd (appended last, every draw always happens): older
     seeds keep their exact fault prefix, and flipping the knob never
     shifts the stream. *)
  let herd_on = Rng.chance rng 0.25 in
  let herd_at = 2.0 +. Rng.float rng (horizon -. 7.0) in
  let herd_clients = 4 + Rng.int rng 13 in
  let herd_burst = 1 + Rng.int rng 3 in
  let faults =
    if herd_on then
      faults @ [ Herd { at = herd_at; clients = herd_clients; burst = herd_burst } ]
    else faults
  in
  List.stable_sort (fun a b -> Float.compare (fault_time a) (fault_time b)) faults

let generate seed =
  let root = Rng.create seed in
  (* One independent stream per plan section: adding draws to the
     workload must not perturb the faults, and vice versa. *)
  let crng = Rng.split root in
  let wrng = Rng.split root in
  let frng = Rng.split root in
  let config = gen_config crng in
  let horizon = 60.0 +. Rng.float wrng 60.0 in
  let ops = gen_ops wrng config ~horizon in
  let faults = gen_faults frng config ~horizon in
  { seed; config; ops; faults; budget = horizon +. 60.0 }

let config_of_seed seed =
  let root = Rng.create seed in
  gen_config (Rng.split root)

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                    *)
(* ------------------------------------------------------------------ *)

let fnum f = Printf.sprintf "%.17g" f

let ints_to_json l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let op_to_json = function
  | Add { at } -> Printf.sprintf {|{"op":"add","at":%s}|} (fnum at)
  | Remove { at } -> Printf.sprintf {|{"op":"remove","at":%s}|} (fnum at)
  | Size { at } -> Printf.sprintf {|{"op":"size","at":%s}|} (fnum at)
  | Iterate { at; semantics; think; limit; repeat } ->
      Printf.sprintf
        {|{"op":"iterate","at":%s,"semantics":"%s","think":%s,"limit":%d,"repeat":%d}|}
        (fnum at)
        (Weakset_obs.Event.json_escape semantics)
        (fnum think) limit repeat

let fault_to_json = function
  | Crash { node; at; recover_at } ->
      Printf.sprintf {|{"fault":"crash","node":%d,"at":%s,"recover_at":%s}|} node (fnum at)
        (fnum recover_at)
  | Cut { a; b; at; heal_at } ->
      Printf.sprintf {|{"fault":"cut","a":%d,"b":%d,"at":%s,"heal_at":%s}|} a b (fnum at)
        (fnum heal_at)
  | Partition { groups; at; heal_at } ->
      Printf.sprintf {|{"fault":"partition","groups":[%s],"at":%s,"heal_at":%s}|}
        (String.concat "," (List.map ints_to_json groups))
        (fnum at) (fnum heal_at)
  | Herd { at; clients; burst } ->
      Printf.sprintf {|{"fault":"herd","at":%s,"clients":%d,"burst":%d}|} (fnum at) clients
        burst

let open_loop_to_json = function
  | None -> "null"
  | Some { ol_rate; ol_clients; ol_bursty } ->
      Printf.sprintf {|{"rate":%s,"clients":%d,"bursty":%b}|} (fnum ol_rate) ol_clients
        ol_bursty

let config_to_json c =
  Printf.sprintf
    {|{"shape":"%s","nodes":%d,"latency":%s,"replica_ixs":%s,"replica_interval":%s,"initial_size":%d,"cache":%b,"lease_ttl":%s,"open_loop":%s}|}
    (shape_name c.shape) c.nodes (fnum c.latency) (ints_to_json c.replica_ixs)
    (fnum c.replica_interval) c.initial_size c.cache (fnum c.lease_ttl)
    (open_loop_to_json c.open_loop)

let plan_to_json p =
  Printf.sprintf {|{"seed":%Ld,"config":%s,"ops":[%s],"faults":[%s],"budget":%s}|} p.seed
    (config_to_json p.config)
    (String.concat "," (List.map op_to_json p.ops))
    (String.concat "," (List.map fault_to_json p.faults))
    (fnum p.budget)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  match Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: expected int" name)

let float_field name j =
  let* v = field name j in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected number" name)

let string_field name j =
  let* v = field name j in
  match Json.to_string v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected string" name)

let list_field name j =
  let* v = field name j in
  match Json.to_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S: expected array" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let ints_of_json name j =
  let* l = list_field name j in
  map_result
    (fun v ->
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: expected int elements" name))
    l

let op_of_json j =
  let* kind = string_field "op" j in
  match kind with
  | "add" ->
      let* at = float_field "at" j in
      Ok (Add { at })
  | "remove" ->
      let* at = float_field "at" j in
      Ok (Remove { at })
  | "size" ->
      let* at = float_field "at" j in
      Ok (Size { at })
  | "iterate" ->
      let* at = float_field "at" j in
      let* semantics = string_field "semantics" j in
      let* think = float_field "think" j in
      let* limit = int_field "limit" j in
      let* repeat = int_field "repeat" j in
      Ok (Iterate { at; semantics; think; limit; repeat })
  | k -> Error (Printf.sprintf "unknown op kind %S" k)

let fault_of_json j =
  let* kind = string_field "fault" j in
  match kind with
  | "crash" ->
      let* node = int_field "node" j in
      let* at = float_field "at" j in
      let* recover_at = float_field "recover_at" j in
      Ok (Crash { node; at; recover_at })
  | "cut" ->
      let* a = int_field "a" j in
      let* b = int_field "b" j in
      let* at = float_field "at" j in
      let* heal_at = float_field "heal_at" j in
      Ok (Cut { a; b; at; heal_at })
  | "partition" ->
      let* groups_j = list_field "groups" j in
      let* groups =
        map_result
          (fun g ->
            match Json.to_list g with
            | None -> Error "partition groups: expected arrays"
            | Some l ->
                map_result
                  (fun v ->
                    match Json.to_int v with
                    | Some i -> Ok i
                    | None -> Error "partition groups: expected int elements")
                  l)
          groups_j
      in
      let* at = float_field "at" j in
      let* heal_at = float_field "heal_at" j in
      Ok (Partition { groups; at; heal_at })
  | "herd" ->
      let* at = float_field "at" j in
      let* clients = int_field "clients" j in
      let* burst = int_field "burst" j in
      Ok (Herd { at; clients; burst })
  | k -> Error (Printf.sprintf "unknown fault kind %S" k)

let bool_field name j =
  let* v = field name j in
  match v with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected bool" name)

let config_of_json j =
  let* shape_s = string_field "shape" j in
  let* shape =
    match shape_of_name shape_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown shape %S" shape_s)
  in
  let* nodes = int_field "nodes" j in
  let* latency = float_field "latency" j in
  let* replica_ixs = ints_of_json "replica_ixs" j in
  let* replica_interval = float_field "replica_interval" j in
  let* initial_size = int_field "initial_size" j in
  let* cache = bool_field "cache" j in
  let* lease_ttl = float_field "lease_ttl" j in
  (* Absent or null on bundles written before the knob existed. *)
  let* open_loop =
    match Json.member "open_loop" j with
    | None | Some Json.Null -> Ok None
    | Some ol ->
        let* ol_rate = float_field "rate" ol in
        let* ol_clients = int_field "clients" ol in
        let* ol_bursty = bool_field "bursty" ol in
        Ok (Some { ol_rate; ol_clients; ol_bursty })
  in
  Ok
    {
      shape;
      nodes;
      latency;
      replica_ixs;
      replica_interval;
      initial_size;
      cache;
      lease_ttl;
      open_loop;
    }

let plan_of_json j =
  let* seed_j = field "seed" j in
  let* seed =
    match seed_j with
    | Json.Num s -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "seed: bad int64 lexeme %S" s))
    | _ -> Error "seed: expected number"
  in
  let* config_j = field "config" j in
  let* config = config_of_json config_j in
  let* ops_j = list_field "ops" j in
  let* ops = map_result op_of_json ops_j in
  let* faults_j = list_field "faults" j in
  let* faults = map_result fault_of_json faults_j in
  let* budget = float_field "budget" j in
  Ok { seed; config; ops; faults; budget }

let plan_of_string s =
  match Json.of_string_opt s with
  | None -> Error "malformed JSON"
  | Some j -> plan_of_json j
