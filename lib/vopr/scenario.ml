module Engine = Weakset_sim.Engine
module Rng = Weakset_sim.Rng
module Topology = Weakset_net.Topology
module Nodeid = Weakset_net.Nodeid
module Fault = Weakset_net.Fault
module Rpc = Weakset_net.Rpc
module Node_server = Weakset_store.Node_server
module Directory = Weakset_store.Directory
module Client = Weakset_store.Client
module Protocol = Weakset_store.Protocol
module Oid = Weakset_store.Oid
module Svalue = Weakset_store.Svalue
module Group = Weakset_repl.Group
module Bus = Weakset_obs.Bus
module Event = Weakset_obs.Event
module Digest = Weakset_obs.Digest

(* Replicas are named r0..r(n-1) in scenario prose and addressed by
   index here; the interpreter adds one extra node for the client. *)

type step =
  | Stop of { node : int; at : float; recover_at : float }
  | Crash of { node : int; at : float }
  | Heal of { node : int; at : float }
  | Isolate of { node : int; at : float; heal_at : float }
  | Partition of { groups : int list list; at : float; heal_at : float }
  | Workload of { at : float; until : float; every : float }
  | Storm of { at : float; until : float; clients : int; every : float }
  | Probe_stable of { at : float }

type t = {
  name : string;
  replicas : int;
  until : float;
  admission : int option;
  steps : step list;
}

let set_id = 1
let heal_margin = 30.0
let default_step_cap = 1_000_000

(* ------------------------------------------------------------------ *)
(* Validation: a malformed table entry should fail loudly at load,    *)
(* not as a silent no-fault run.                                      *)

let validate scn =
  let fail fmt = Format.kasprintf invalid_arg ("scenario %s: " ^^ fmt) scn.name in
  if scn.replicas < 1 then fail "needs at least one replica";
  if scn.until <= heal_margin then fail "horizon %.1f leaves no heal margin" scn.until;
  let node_ok i = i >= 0 && i < scn.replicas in
  let in_run at = at > 0.0 && at < scn.until in
  List.iter
    (fun step ->
      match step with
      | Stop { node; at; recover_at } ->
          if not (node_ok node) then fail "Stop names unknown replica r%d" node;
          if not (in_run at) then fail "Stop at=%.1f outside the run" at;
          if recover_at <= at then fail "Stop window r%d [%.1f,%.1f] is empty" node at recover_at
      | Crash { node; at } ->
          if not (node_ok node) then fail "Crash names unknown replica r%d" node;
          if not (in_run at) then fail "Crash at=%.1f outside the run" at
      | Heal { node; at } ->
          if not (node_ok node) then fail "Heal names unknown replica r%d" node;
          if not (in_run at) then fail "Heal at=%.1f outside the run" at
      | Isolate { node; at; heal_at } ->
          if not (node_ok node) then fail "Isolate names unknown replica r%d" node;
          if not (in_run at) then fail "Isolate at=%.1f outside the run" at;
          if heal_at <= at then fail "Isolate window r%d [%.1f,%.1f] is empty" node at heal_at
      | Partition { groups; at; heal_at } ->
          List.iter
            (List.iter (fun i ->
                 if not (node_ok i) then fail "Partition names unknown replica r%d" i))
            groups;
          if not (in_run at) then fail "Partition at=%.1f outside the run" at;
          if heal_at <= at then fail "Partition window [%.1f,%.1f] is empty" at heal_at
      | Workload { at; until; every } ->
          if until <= at then fail "Workload window [%.1f,%.1f] is empty" at until;
          if until > scn.until -. heal_margin then
            fail "Workload runs past the heal margin (until %.1f)" until;
          if every <= 0.0 then fail "Workload every=%.2f must be positive" every
      | Storm { at; until; clients; every } ->
          if until <= at then fail "Storm window [%.1f,%.1f] is empty" at until;
          if until > scn.until -. heal_margin then
            fail "Storm runs past the heal margin (until %.1f)" until;
          if clients < 1 then fail "Storm clients=%d must be positive" clients;
          if every <= 0.0 then fail "Storm every=%.2f must be positive" every
      | Probe_stable { at } ->
          if not (in_run at) then fail "Probe_stable at=%.1f outside the run" at)
    scn.steps

(* ------------------------------------------------------------------ *)
(* Interpreter                                                        *)

(* Fold canonical op renderings ("add oN@nM" / "remove oN@nM", see
   {!Group.op_str}) back into a membership list. *)
let fold_members ops =
  List.fold_left
    (fun acc op ->
      match String.index_opt op ' ' with
      | None -> acc
      | Some sp ->
          let verb = String.sub op 0 sp in
          let oid = String.sub op (sp + 1) (String.length op - sp - 1) in
          let without = List.filter (fun m -> not (String.equal m oid)) acc in
          if String.equal verb "add" then oid :: without
          else if String.equal verb "remove" then without
          else acc)
    [] ops

type run_stats = {
  digest : string;
  events : int;
  steps : int;
  issues : Oracle.issue list;
  committed : int;
  ops_ok : int;
  ops_failed : int;
}

let execute ?(step_cap = default_step_cap) scn =
  validate scn;
  let n = scn.replicas in
  let majority = (n / 2) + 1 in
  (* The seed is a pure function of the scenario name: every run of a
     table entry replays the same virtual history, byte for byte. *)
  let seed = Int64.of_int (Hashtbl.hash scn.name) in
  let eng = Engine.create ~seed () in
  let bus = Engine.bus eng in
  let digest = Digest.create () in
  Bus.attach bus ~name:"scenario-digest" (Digest.sink digest);
  let rpc_calls = ref 0 and rpc_dones = ref 0 in
  let fiber_state : (int, string) Hashtbl.t = Hashtbl.create 32 in
  Bus.attach bus ~name:"scenario-accounting" (fun ev ->
      match ev.Event.kind with
      | Event.Rpc_call _ -> incr rpc_calls
      | Event.Rpc_done _ -> incr rpc_dones
      | Event.Fiber_spawn { fid; fiber } -> Hashtbl.replace fiber_state fid fiber
      | Event.Run_end { fid; park = Event.Park_done | Event.Park_crash; _ } ->
          Hashtbl.remove fiber_state fid
      | _ -> ());
  let topo = Topology.create () in
  let nodes = Topology.clique topo (n + 1) ~latency:0.5 in
  let client_node = nodes.(n) in
  let member_nodes = Array.to_list (Array.sub nodes 0 n) in
  let rpc = Rpc.create eng topo in
  let fault = Fault.create eng topo in
  let admission =
    Option.map (fun capacity -> { Node_server.capacity }) scn.admission
  in
  let servers =
    Array.init n (fun i ->
        let s = Node_server.create ?admission rpc nodes.(i) in
        Node_server.host_directory s ~set_id ~policy:Node_server.Defer_removes_while_iterating;
        s)
  in
  let ledger = Group.Ledger.create () in
  let groups =
    Array.init n (fun i ->
        Group.create rpc ~set_id ~members:member_nodes ~me:nodes.(i) ~ledger
          ~server:servers.(i))
  in
  Array.iter (fun g -> Group.start g ~until:scn.until) groups;
  let client = Client.create rpc client_node in
  let sref =
    {
      Protocol.set_id;
      coordinator = nodes.(0);
      replicas = List.tl member_nodes;
    }
  in
  (* Shared across workload windows so every Add names a fresh oid. *)
  let opk = ref 0 and ops_ok = ref 0 and ops_failed = ref 0 in
  (* Storm clients draw their retry jitter from split streams of a
     scenario-seeded rng, so the whole backoff schedule is a pure
     function of the scenario name. *)
  let storm_rng = Rng.create seed in
  let probes = ref [] in
  let quorum_connected () =
    let up = List.filter (Topology.node_up topo) member_nodes in
    List.exists
      (fun i ->
        let reaches j = Nodeid.equal i j || Topology.reachable topo i j in
        List.length (List.filter reaches up) >= majority)
      up
  in
  let probe at =
    Engine.schedule eng ~after:at (fun () ->
        let ok = Group.stable (Array.to_list groups) || not (quorum_connected ()) in
        probes := (at, ok) :: !probes)
  in
  let workload ~at ~until ~every =
    Engine.spawn eng ~name:(Printf.sprintf "scn-load-%.0f" at) (fun () ->
        Engine.sleep eng at;
        while Engine.now eng < until do
          let k = !opk in
          incr opk;
          let result =
            (* Two adds then a remove of the elder: every op is effective
               when it lands, so the ledger grows by one per ack. *)
            if k mod 3 = 2 then
              Client.dir_remove client sref (Oid.make ~num:(k - 2) ~home:nodes.(0))
            else Client.dir_add client sref (Oid.make ~num:k ~home:nodes.(0))
          in
          (match result with Ok () -> incr ops_ok | Error _ -> incr ops_failed);
          Engine.sleep eng every
        done)
  in
  (* A retry storm: [clients] independent retry-budgeted clients hammer
     the coordinator in lockstep.  Every client's first op is a mutation,
     so the opening burst drives the admission queue past the Mutate
     threshold and sheds mutations — the clean-no-op invariant the
     planted shed bug violates; after that, mostly reads with a mutation
     every fifth op keep the queue saturated while the budgets drain,
     back off and refill. *)
  let storm ~at ~until ~clients ~every =
    for c = 0 to clients - 1 do
      let retry =
        {
          Client.retry_rng = Rng.split storm_rng;
          retry_burst = 10;
          retry_refill = 0.5;
          retry_backoff = 0.1;
          retry_backoff_max = 5.0;
          retry_attempts = 6;
        }
      in
      let sc = Client.create ~retry rpc client_node in
      Engine.spawn eng ~name:(Printf.sprintf "scn-storm-%.0f-%d" at c) (fun () ->
          Engine.sleep eng at;
          let k = ref 0 in
          while Engine.now eng < until do
            let result =
              if !k mod 5 = 0 then
                (* Storm oids live in their own namespace so they never
                   collide with the steady workload's. *)
                Client.dir_add sc sref
                  (Oid.make ~num:(1_000_000 + (c * 10_000) + !k) ~home:nodes.(0))
              else
                Result.map
                  (fun (_ : Weakset_store.Version.t * Oid.t list) -> ())
                  (Client.dir_read sc ~from:nodes.(0) ~set_id)
            in
            (match result with Ok () -> incr ops_ok | Error _ -> incr ops_failed);
            incr k;
            Engine.sleep eng every
          done)
    done
  in
  List.iter
    (fun step ->
      match step with
      | Stop { node; at; recover_at } ->
          Fault.stop_node fault ~at ~recover_at nodes.(node)
      | Crash { node; at } -> Fault.schedule_crash fault ~at nodes.(node)
      | Heal { node; at } -> Fault.heal_node fault ~at nodes.(node)
      | Isolate { node; at; heal_at } -> Fault.isolate_node fault ~at ~heal_at nodes.(node)
      | Partition { groups = gs; at; heal_at } ->
          let gs = List.map (List.map (fun i -> nodes.(i))) gs in
          Fault.schedule_partition fault ~at ~heal_at gs
      | Workload { at; until; every } -> workload ~at ~until ~every
      | Storm { at; until; clients; every } -> storm ~at ~until ~clients ~every
      | Probe_stable { at } -> probe at)
    scn.steps;
  (* Close every fault before the horizon so the group has a quiet
     window to elect, converge and answer the final liveness probe. *)
  let heal_at = scn.until -. heal_margin in
  Engine.schedule eng ~after:heal_at (fun () ->
      Fault.heal_all fault;
      Array.iteri
        (fun i node ->
          if i < n && not (Topology.node_up topo node) then Fault.recover_node fault node)
        nodes);
  probe (scn.until -. 2.0);
  let steps = Engine.run ~max_steps:step_cap eng in
  let r_final_logs =
    List.filter_map
      (fun g ->
        let node = Group.me g in
        if Topology.node_up topo node then
          Some (Nodeid.to_int node, Group.committed_log g)
        else None)
      (Array.to_list groups)
  in
  let r_ledger =
    List.map
      (fun e -> (e.Group.Ledger.l_opnum, e.Group.Ledger.l_op))
      (Group.Ledger.entries ledger)
  in
  (* Shed safety: each survivor's directory next to the fold of its
     ledger-justified committed entries.  A shed mutation that was not a
     clean no-op put an effect in the directory (and the directory's own
     log) that no ledger-acked commit justifies, so the two memberships
     part ways — judged per node, so commit propagation lag between
     nodes cannot fake a divergence. *)
  let r_dir_vs_log =
    List.filter_map
      (fun i ->
        let node = nodes.(i) in
        if Topology.node_up topo node then
          let dir_members =
            Directory.members (Node_server.directory_truth servers.(i) ~set_id)
            |> Oid.Set.elements
            |> List.map (Format.asprintf "%a" Oid.pp)
          in
          let justified =
            List.filter
              (fun entry -> List.mem entry r_ledger)
              (Group.committed_log groups.(i))
          in
          Some (Nodeid.to_int node, dir_members, fold_members (List.map snd justified))
        else None)
      (List.init n Fun.id)
  in
  let evidence =
    { Oracle.r_ledger; r_final_logs; r_probes = List.rev !probes; r_dir_vs_log }
  in
  let engine_crashes =
    List.map
      (fun c -> (c.Engine.crash_fiber, Printexc.to_string c.Engine.crash_exn))
      (Engine.crashes eng)
  in
  let parked_fibers =
    if Engine.live_fibers eng = 0 then []
    else Hashtbl.fold (fun _ name acc -> name :: acc) fiber_state [] |> List.sort compare
  in
  let issues =
    Oracle.judge
      {
        Oracle.iterations = [];
        engine_crashes;
        parked_fibers;
        steps;
        step_cap;
        unmatched_rpcs = !rpc_calls - !rpc_dones;
        cache = None;
        repl = Some evidence;
      }
  in
  {
    digest = Digest.value digest;
    events = Digest.count digest;
    steps;
    issues;
    committed = List.length r_ledger;
    ops_ok = !ops_ok;
    ops_failed = !ops_failed;
  }

type outcome = {
  o_name : string;
  o_digest : string;
  o_events : int;
  o_deterministic : bool;
  o_issues : Oracle.issue list;
  o_committed : int;
  o_ops_ok : int;
  o_ops_failed : int;
}

let passed o = o.o_deterministic && o.o_issues = []

let run ?step_cap ?(planted = false) ?(planted_shed = false) scn =
  let saved = !Group.planted_view_change_drop in
  let saved_shed = !Node_server.planted_shed_after_apply in
  Group.planted_view_change_drop := planted;
  Node_server.planted_shed_after_apply := planted_shed;
  Fun.protect
    ~finally:(fun () ->
      Group.planted_view_change_drop := saved;
      Node_server.planted_shed_after_apply := saved_shed)
    (fun () ->
      (* Run the whole virtual history twice: a table entry only counts
         as passing if the replay is byte-identical. *)
      let a = execute ?step_cap scn in
      let b = execute ?step_cap scn in
      {
        o_name = scn.name;
        o_digest = a.digest;
        o_events = a.events;
        o_deterministic = String.equal a.digest b.digest && a.events = b.events;
        o_issues = a.issues;
        o_committed = a.committed;
        o_ops_ok = a.ops_ok;
        o_ops_failed = a.ops_failed;
      })

(* ------------------------------------------------------------------ *)
(* The table.                                                         *)

let steady_load = Workload { at = 10.0; until = 240.0; every = 2.0 }

let table =
  [
    {
      name = "steady-state";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps = [ steady_load; Probe_stable { at = 100.0 }; Probe_stable { at = 230.0 } ];
    };
    {
      name = "leader-crash-failover";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          Stop { node = 0; at = 60.0; recover_at = 150.0 };
          Probe_stable { at = 120.0 };
          Probe_stable { at = 230.0 };
        ];
    };
    {
      name = "leader-crash-mid-commit";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          (* Dense traffic so the crash lands between Prepare fan-out
             and commit-point propagation. *)
          Workload { at = 10.0; until = 200.0; every = 0.4 };
          Crash { node = 0; at = 50.2 };
          Heal { node = 0; at = 160.0 };
          Probe_stable { at = 120.0 };
        ];
    };
    {
      name = "partitioned-old-leader";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          (* The leader keeps running but can reach nobody: the majority
             side must elect past it, and it must rejoin as a backup. *)
          Isolate { node = 0; at = 60.0; heal_at = 170.0 };
          Probe_stable { at = 130.0 };
          Probe_stable { at = 240.0 };
        ];
    };
    {
      name = "dueling-view-changes";
      replicas = 5;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          (* All four backups lose the leader at once; the staggered
             suspicion timers must converge on one view, not duel. *)
          Stop { node = 0; at = 60.0; recover_at = 140.0 };
          Probe_stable { at = 110.0 };
        ];
    };
    {
      name = "backup-crash";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          Stop { node = 2; at = 60.0; recover_at = 150.0 };
          Probe_stable { at = 100.0 };
        ];
    };
    {
      name = "state-transfer-under-churn";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          (* r1 misses most of the run and returns far behind the
             commit point: rejoining takes a Get_state transfer, not
             one heartbeat. *)
          Workload { at = 10.0; until = 250.0; every = 0.8 };
          Stop { node = 1; at = 40.0; recover_at = 220.0 };
          Probe_stable { at = 150.0 };
        ];
    };
    {
      name = "quorum-loss-recovery";
      replicas = 3;
      until = 400.0;
      admission = None;
      steps =
        [
          Workload { at = 10.0; until = 350.0; every = 2.0 };
          (* Two of three down: no elections can finish, submits must
             fail retryably, and the group must recover when a quorum
             returns. *)
          Stop { node = 1; at = 60.0; recover_at = 260.0 };
          Stop { node = 2; at = 70.0; recover_at = 240.0 };
          Probe_stable { at = 300.0 };
        ];
    };
    {
      name = "isolate-heal-isolate";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          Isolate { node = 0; at = 50.0; heal_at = 100.0 };
          Isolate { node = 1; at = 130.0; heal_at = 180.0 };
          Probe_stable { at = 120.0 };
          Probe_stable { at = 210.0 };
        ];
    };
    {
      name = "double-failover";
      replicas = 5;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          (* View 0's leader dies, then view 1's leader dies too: two
             complete view changes back to back. *)
          Stop { node = 0; at = 50.0; recover_at = 180.0 };
          Stop { node = 1; at = 90.0; recover_at = 200.0 };
          Probe_stable { at = 150.0 };
          Probe_stable { at = 240.0 };
        ];
    };
    {
      name = "partition-majority-minority";
      replicas = 5;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          (* Leader and one backup on the minority side; the majority
             (with the client) must keep committing. *)
          Partition { groups = [ [ 0; 1 ] ]; at = 60.0; heal_at = 180.0 };
          Probe_stable { at = 130.0 };
          Probe_stable { at = 240.0 };
        ];
    };
    {
      name = "old-leader-returns";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          (* A short outage: the deposed leader comes back quickly and
             must step down into the higher view it slept through. *)
          Stop { node = 0; at = 50.0; recover_at = 95.0 };
          Probe_stable { at = 140.0 };
        ];
    };
    {
      name = "flapping-replica";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          Isolate { node = 2; at = 40.0; heal_at = 60.0 };
          Isolate { node = 2; at = 80.0; heal_at = 100.0 };
          Isolate { node = 2; at = 120.0; heal_at = 140.0 };
          Probe_stable { at = 160.0 };
        ];
    };
    {
      name = "overlapping-isolations";
      replicas = 5;
      until = 300.0;
      admission = None;
      steps =
        [
          steady_load;
          (* The windows overlap: when r1's ends, r2 must stay cut off
             until its own heal — per-fault link holds, not a global
             heal.  With five replicas the remaining three keep a
             quorum throughout. *)
          Isolate { node = 1; at = 50.0; heal_at = 120.0 };
          Isolate { node = 2; at = 80.0; heal_at = 170.0 };
          Probe_stable { at = 140.0 };
          Probe_stable { at = 230.0 };
        ];
    };
    {
      name = "rapid-churn";
      replicas = 3;
      until = 300.0;
      admission = None;
      steps =
        [
          Workload { at = 5.0; until = 260.0; every = 0.25 };
          Probe_stable { at = 100.0 };
          Probe_stable { at = 200.0 };
        ];
    };
    {
      name = "retry-storm";
      replicas = 3;
      until = 300.0;
      (* Capacity 8: reads shed at queue depth 4, mutations at 6 —
         small enough that the storm's opening burst sheds mutations
         (the planted-shed gate needs one) and its steady offered rate
         (16/0.25 = 64/s against a 1/0.02 = 50/s server) keeps the
         queue saturated, budgets draining and refilling. *)
      admission = Some 8;
      steps =
        [
          steady_load;
          Storm { at = 30.0; until = 220.0; clients = 16; every = 0.25 };
          Probe_stable { at = 120.0 };
          Probe_stable { at = 230.0 };
        ];
    };
    {
      name = "shed-under-partition";
      replicas = 3;
      until = 300.0;
      admission = Some 8;
      steps =
        [
          steady_load;
          Storm { at = 20.0; until = 240.0; clients = 12; every = 0.3 };
          (* The backups pair off; the coordinator keeps the client but
             loses its quorum, so mutations fail retryably while the
             read storm keeps shedding against it. *)
          Partition { groups = [ [ 1; 2 ] ]; at = 60.0; heal_at = 160.0 };
          Probe_stable { at = 130.0 };
          Probe_stable { at = 230.0 };
        ];
    };
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) table

let pp_outcome ppf o =
  let verdict =
    if passed o then "PASS"
    else if not o.o_deterministic then "NONDETERMINISTIC"
    else "FAIL"
  in
  Format.fprintf ppf "%-28s %-16s commits=%-4d ops=%d/%d events=%d digest=%s" o.o_name
    verdict o.o_committed o.o_ops_ok
    (o.o_ops_ok + o.o_ops_failed)
    o.o_events o.o_digest;
  List.iter (fun i -> Format.fprintf ppf "@,  issue: %s" (Oracle.describe i)) o.o_issues
