module Figures = Weakset_spec.Figures
module Computation = Weakset_spec.Computation
module Json = Weakset_obs.Json

type issue =
  | Stale_beyond_lease of {
      time : float;
      set_id : int;
      served : int;
      required : int;
      age : float;
    }
  | Spec_violation of { iteration : int; semantics : string; where : string; message : string }
  | Monitor_mismatch of { iteration : int; semantics : string; detail : string }
  | Fiber_crash of { fiber : string; exn_text : string }
  | Stuck_iterator of { iteration : int; semantics : string }
  | Steps_exhausted of { steps : int }
  | Leaked_fibers of { count : int; fibers : string list }
  | Lost_rpc of { count : int }
  | Commit_lost of { opnum : int; op : string; node : int }
  | Commit_reordered of { opnum : int; first : string; second : string; node : int }
  | Election_overdue of { deadline : float }
  | Shed_divergence of { node : int; extra : string list; missing : string list }
      (** a node's hosted directory diverged from the fold of its own
          committed log: some effect landed outside consensus — e.g. a
          "shed" mutation that was not a clean no-op.  [extra] are
          members present in the directory the log cannot justify;
          [missing] the converse. *)

type iteration_input = {
  index : int;
  semantics : string;
  faulty : bool;
  spec : Figures.spec;
  outcome : [ `Done | `Failed of string | `Limit | `Unfinished ];
  computation : Computation.t;
  online_violations : Figures.violation list;
}

type cache_hit = { h_time : float; h_set : int; h_version : int; h_age : float }

type cache_evidence = {
  hits : cache_hit list;
  mutations : (float * int) list;
  lease_ttl : float;
  inval_grace : float;
  fault_windows : (float * float) list;
}

(* Evidence from a replication-group run (the scenario harness):
   [r_ledger] is the client-visible commit ledger — every (opnum, op)
   some leader acknowledged as committed; [r_final_logs] the committed
   log each surviving member ended with; [r_probes] the liveness probes
   — (deadline, was the group stable by then?) for every quiet window
   long enough that a quorum-connected group must have elected. *)
type repl_evidence = {
  r_ledger : (int * string) list;
  r_final_logs : (int * (int * string) list) list;
  r_probes : (float * bool) list;
  r_dir_vs_log : (int * string list * string list) list;
      (* per surviving node: (node, directory members, members obtained
         by folding that node's OWN committed log).  Equality is the
         shed-is-a-clean-no-op invariant: every directory effect must be
         justified by a committed entry *)
}

type input = {
  iterations : iteration_input list;
  engine_crashes : (string * string) list;
  parked_fibers : string list;
  steps : int;
  step_cap : int;
  unmatched_rpcs : int;
  cache : cache_evidence option;
  repl : repl_evidence option;
}

let category = function
  | Stale_beyond_lease _ -> "stale-beyond-lease"
  | Spec_violation _ -> "spec-violation"
  | Monitor_mismatch _ -> "monitor-mismatch"
  | Fiber_crash _ -> "fiber-crash"
  | Stuck_iterator _ -> "stuck-iterator"
  | Steps_exhausted _ -> "steps-exhausted"
  | Leaked_fibers _ -> "leaked-fibers"
  | Lost_rpc _ -> "lost-rpc"
  | Commit_lost _ -> "commit-lost"
  | Commit_reordered _ -> "commit-reordered"
  | Election_overdue _ -> "election-overdue"
  | Shed_divergence _ -> "shed-divergence"

let severity = function
  | Commit_lost _ -> 10
  | Shed_divergence _ -> 9
  | Commit_reordered _ -> 9
  | Stale_beyond_lease _ -> 8
  | Spec_violation _ -> 7
  | Monitor_mismatch _ -> 6
  | Fiber_crash _ -> 5
  | Stuck_iterator _ -> 4
  | Election_overdue _ -> 4
  | Steps_exhausted _ -> 3
  | Leaked_fibers _ -> 2
  | Lost_rpc _ -> 1

let sort issues =
  List.stable_sort (fun a b -> Int.compare (severity b) (severity a)) issues

let describe = function
  | Stale_beyond_lease { time; set_id; served; required; age } ->
      Printf.sprintf
        "cache served set %d at t=%.3f with version %d (lease age %.3f) although the \
         coordinator had reached version %d long enough ago for a callback to have landed"
        set_id time served age required
  | Spec_violation { iteration; semantics; where; message } ->
      Printf.sprintf "spec violation (iteration %d, %s): [%s] %s" iteration semantics where
        message
  | Monitor_mismatch { iteration; semantics; detail } ->
      Printf.sprintf "online/replay monitor mismatch (iteration %d, %s): %s" iteration
        semantics detail
  | Fiber_crash { fiber; exn_text } -> Printf.sprintf "fiber %S crashed: %s" fiber exn_text
  | Stuck_iterator { iteration; semantics } ->
      Printf.sprintf "iterator stuck (iteration %d, %s): suspended after all faults healed"
        iteration semantics
  | Steps_exhausted { steps } -> Printf.sprintf "step cap hit after %d events: livelock" steps
  | Leaked_fibers { count; fibers } ->
      Printf.sprintf "%d fiber(s) leaked (parked at quiescence): %s" count
        (String.concat ", " fibers)
  | Lost_rpc { count } -> Printf.sprintf "%d RPC call(s) lost: no reply and no timeout" count
  | Commit_lost { opnum; op; node } ->
      Printf.sprintf
        "commit safety: op %s was acknowledged committed at opnum %d but node %d's final \
         log has nothing there"
        op opnum node
  | Commit_reordered { opnum; first; second; node } ->
      if node < 0 then
        Printf.sprintf
          "commit safety: opnum %d was acknowledged twice with different ops (%s, then %s) \
          — a committed entry was overwritten across a view change"
          opnum first second
      else
        Printf.sprintf
          "commit safety: node %d's final log holds %s at opnum %d where %s was \
           acknowledged committed"
          node second opnum first
  | Election_overdue { deadline } ->
      Printf.sprintf
        "view-change liveness: the group was quorum-connected yet had no stable leader by \
         t=%.3f"
        deadline
  | Shed_divergence { node; extra; missing } ->
      (* A planted-bug run can diverge by hundreds of members; keep the
         verdict line readable and leave the full lists to the JSON. *)
      let preview l =
        let n = List.length l in
        if n <= 6 then String.concat " " l
        else Printf.sprintf "%s … %d total" (String.concat " " (List.filteri (fun i _ -> i < 6) l)) n
      in
      Printf.sprintf
        "shed safety: node %d's directory diverges from the fold of its committed log \
         (unjustified members: [%s]; absent members: [%s]) — some effect landed outside \
         consensus, e.g. a shed op that was not a clean no-op"
        node (preview extra) (preview missing)

(* ------------------------------------------------------------------ *)
(* Judging                                                            *)
(* ------------------------------------------------------------------ *)

(* Mismatch classes that are judge artifacts, not implementation bugs.
   The checker evaluates its expectation against the invocation's
   recorded PRE-state, but a fault (or heal) landing between that capture
   and the invocation's outcome makes the expectation stale:

   - a pessimistic iterator times out on a fetch because the partition
     arrived after the pre-state said the element was reachable
     ("expected suspends but iterator fails", and its dual where a heal
     lets a fetch succeed after the pre-state said nothing was);
   - a yield whose element the pre-state considered unreachable because
     the heal arrived mid-fetch;
   - an optimistic-stale iterator returning while coordinator truth still
     holds members its (legitimately stale, §3 / ablation A1) replica
     view has never heard of.

   All are gated on the plan actually injecting faults, except the stale
   early return, which replica lag alone can produce. *)
let tolerable it (v : Figures.violation) =
  let msg = v.Figures.message in
  let pessimistic =
    match it.semantics with "immutable" | "snapshot" | "grow-only" -> true | _ -> false
  in
  (it.faulty && pessimistic
  && (msg = "expected suspends but iterator fails"
     || msg = "expected fails but iterator suspends"))
  || (it.faulty && msg = "suspends obligations > e ∈ reachable(s)_pre")
  || (it.semantics = "optimistic-stale" && msg = "expected suspends but iterator returns")

let judge_iteration it =
  (* An iteration that could not even record a first state (e.g. the
     coordinator was unreachable at open) produced no computation to
     check: a legitimate pessimistic failure, not a violation. *)
  match Computation.first_state it.computation with
  | None -> []
  | Some _ ->
      let verdict = Figures.check it.spec it.computation in
      let replay_violations =
        (match verdict with Figures.Conforms -> [] | Figures.Violates vs -> vs)
        |> List.filter (fun v -> not (tolerable it v))
      in
      let spec_issues =
        List.map
          (fun (v : Figures.violation) ->
            Spec_violation
              {
                iteration = it.index;
                semantics = it.semantics;
                where = v.Figures.where;
                message = v.Figures.message;
              })
          replay_violations
      in
      (* Cross-check: the always-on online monitor saw the same stream of
         Spec_observe events, so it must agree at least on pass/fail. *)
      let online_violations = List.filter (fun v -> not (tolerable it v)) it.online_violations in
      let mismatch =
        match (replay_violations, online_violations) with
        | [], [] -> []
        | _ :: _, [] ->
            [
              Monitor_mismatch
                {
                  iteration = it.index;
                  semantics = it.semantics;
                  detail =
                    Printf.sprintf "replay check found %d violation(s), online monitor none"
                      (List.length replay_violations);
                }
            ]
        | [], _ :: _ ->
            [
              Monitor_mismatch
                {
                  iteration = it.index;
                  semantics = it.semantics;
                  detail =
                    Printf.sprintf "online monitor latched %d violation(s), replay check none"
                      (List.length online_violations);
                }
            ]
        | _ :: _, _ :: _ -> []
      in
      spec_issues @ mismatch

(* Cache coherence: with wire invalidations working, a cache-served
   directory view can lag the coordinator only by a callback's flight
   time.  Every hit must therefore serve at least the authoritative
   version as it stood [inval_grace] before the hit — unless a fault
   window (padded by the same grace) overlaps the lease's lifetime, in
   which case the client is legitimately on its TTL fallback and any
   in-lease view is allowed (the client enforces expiry itself, so a hit
   with age > ttl cannot even reach the judge). *)
let judge_cache ev =
  let required_at cutoff =
    List.fold_left (fun acc (t, v) -> if t <= cutoff then max acc v else acc) 0 ev.mutations
  in
  let disturbed ~granted_at ~hit =
    List.exists
      (fun (from_, till) ->
        from_ -. ev.inval_grace <= hit && till +. ev.inval_grace >= granted_at)
      ev.fault_windows
  in
  List.filter_map
    (fun h ->
      let required = required_at (h.h_time -. ev.inval_grace) in
      if h.h_version >= required then None
      else if disturbed ~granted_at:(h.h_time -. h.h_age) ~hit:h.h_time then None
      else
        Some
          (Stale_beyond_lease
             {
               time = h.h_time;
               set_id = h.h_set;
               served = h.h_version;
               required;
               age = h.h_age;
             }))
    ev.hits

(* Commit safety and view-change liveness.  The ledger is the promise
   set: every entry was acked to a client as committed, so it must
   appear — at its opnum, with its op — in every surviving member's
   final log, and no opnum may ever have been acked with two different
   ops.  Liveness: every probe deadline the harness judged "the group
   was quorum-connected long enough to elect" must have found a stable
   leader. *)
let judge_repl ev =
  let seen = Hashtbl.create 16 in
  let dup_issues, uniq_rev =
    List.fold_left
      (fun (dups, uniq) (opnum, op) ->
        match Hashtbl.find_opt seen opnum with
        | Some prev when prev <> op ->
            (Commit_reordered { opnum; first = prev; second = op; node = -1 } :: dups, uniq)
        | Some _ -> (dups, uniq)
        | None ->
            Hashtbl.add seen opnum op;
            (dups, (opnum, op) :: uniq))
      ([], []) ev.r_ledger
  in
  let uniq = List.rev uniq_rev in
  let log_issues =
    List.concat_map
      (fun (node, log) ->
        List.filter_map
          (fun (opnum, op) ->
            match List.assoc_opt opnum log with
            | Some op' when String.equal op' op -> None
            | Some op' -> Some (Commit_reordered { opnum; first = op; second = op'; node })
            | None -> Some (Commit_lost { opnum; op; node }))
          uniq)
      ev.r_final_logs
  in
  let election_issues =
    List.filter_map
      (fun (deadline, ok) -> if ok then None else Some (Election_overdue { deadline }))
      ev.r_probes
  in
  (* Shed safety: each surviving node's directory must equal the fold of
     its own committed log — a per-node self-consistency check, immune
     to cross-node commit-propagation lag. *)
  let shed_issues =
    List.filter_map
      (fun (node, dir_members, log_members) ->
        let sort = List.sort_uniq String.compare in
        let dir = sort dir_members and log = sort log_members in
        if List.equal String.equal dir log then None
        else
          Some
            (Shed_divergence
               {
                 node;
                 extra = List.filter (fun m -> not (List.mem m log)) dir;
                 missing = List.filter (fun m -> not (List.mem m dir)) log;
               }))
      ev.r_dir_vs_log
  in
  List.rev dup_issues @ log_issues @ election_issues @ shed_issues

let judge input =
  let iteration_issues = List.concat_map judge_iteration input.iterations in
  let cache_issues =
    match input.cache with None -> [] | Some ev -> judge_cache ev
  in
  let repl_issues = match input.repl with None -> [] | Some ev -> judge_repl ev in
  let crash_issues =
    List.map
      (fun (fiber, exn_text) -> Fiber_crash { fiber; exn_text })
      input.engine_crashes
  in
  let exhausted = input.steps >= input.step_cap in
  let liveness_issues =
    if exhausted then [ Steps_exhausted { steps = input.steps } ]
    else if input.parked_fibers <> [] then
      (* The event queue drained with fibers still parked: nothing can
         ever wake them again.  Blame unfinished iterations first (the
         schedule healed every fault, so a suspended iterator is a
         liveness bug); anything else is a leak. *)
      let stuck =
        List.filter_map
          (fun it ->
            match it.outcome with
            | `Unfinished ->
                Some (Stuck_iterator { iteration = it.index; semantics = it.semantics })
            | `Done | `Failed _ | `Limit -> None)
          input.iterations
      in
      if stuck <> [] then stuck
      else
        [
          Leaked_fibers
            { count = List.length input.parked_fibers; fibers = input.parked_fibers }
        ]
    else []
  in
  let rpc_issues =
    if input.unmatched_rpcs > 0 && not exhausted then
      [ Lost_rpc { count = input.unmatched_rpcs } ]
    else []
  in
  sort
    (repl_issues @ cache_issues @ iteration_issues @ crash_issues @ liveness_issues
   @ rpc_issues)

let same_failure a b =
  let cats l = List.sort_uniq compare (List.map category l) in
  List.exists (fun c -> List.mem c (cats b)) (cats a)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let esc = Weakset_obs.Event.json_escape

let issue_to_json = function
  | Stale_beyond_lease { time; set_id; served; required; age } ->
      Printf.sprintf
        {|{"issue":"stale-beyond-lease","time":%.17g,"set_id":%d,"served":%d,"required":%d,"age":%.17g}|}
        time set_id served required age
  | Spec_violation { iteration; semantics; where; message } ->
      Printf.sprintf
        {|{"issue":"spec-violation","iteration":%d,"semantics":"%s","where":"%s","message":"%s"}|}
        iteration (esc semantics) (esc where) (esc message)
  | Monitor_mismatch { iteration; semantics; detail } ->
      Printf.sprintf
        {|{"issue":"monitor-mismatch","iteration":%d,"semantics":"%s","detail":"%s"}|}
        iteration (esc semantics) (esc detail)
  | Fiber_crash { fiber; exn_text } ->
      Printf.sprintf {|{"issue":"fiber-crash","fiber":"%s","exn":"%s"}|} (esc fiber)
        (esc exn_text)
  | Stuck_iterator { iteration; semantics } ->
      Printf.sprintf {|{"issue":"stuck-iterator","iteration":%d,"semantics":"%s"}|} iteration
        (esc semantics)
  | Steps_exhausted { steps } ->
      Printf.sprintf {|{"issue":"steps-exhausted","steps":%d}|} steps
  | Leaked_fibers { count; fibers } ->
      Printf.sprintf {|{"issue":"leaked-fibers","count":%d,"fibers":[%s]}|} count
        (String.concat "," (List.map (fun f -> Printf.sprintf {|"%s"|} (esc f)) fibers))
  | Lost_rpc { count } -> Printf.sprintf {|{"issue":"lost-rpc","count":%d}|} count
  | Commit_lost { opnum; op; node } ->
      Printf.sprintf {|{"issue":"commit-lost","opnum":%d,"op":"%s","node":%d}|} opnum
        (esc op) node
  | Commit_reordered { opnum; first; second; node } ->
      Printf.sprintf
        {|{"issue":"commit-reordered","opnum":%d,"first":"%s","second":"%s","node":%d}|}
        opnum (esc first) (esc second) node
  | Election_overdue { deadline } ->
      Printf.sprintf {|{"issue":"election-overdue","deadline":%.17g}|} deadline
  | Shed_divergence { node; extra; missing } ->
      let strs l =
        String.concat "," (List.map (fun s -> Printf.sprintf {|"%s"|} (esc s)) l)
      in
      Printf.sprintf {|{"issue":"shed-divergence","node":%d,"extra":[%s],"missing":[%s]}|}
        node (strs extra) (strs missing)

let ( let* ) = Result.bind

let str name j =
  match Json.member name j with
  | Some v -> (
      match Json.to_string v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "issue field %S: expected string" name))
  | None -> Error (Printf.sprintf "issue: missing field %S" name)

let int_ name j =
  match Json.member name j with
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "issue field %S: expected int" name))
  | None -> Error (Printf.sprintf "issue: missing field %S" name)

let flt name j =
  match Json.member name j with
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "issue field %S: expected number" name))
  | None -> Error (Printf.sprintf "issue: missing field %S" name)

let issue_of_json j =
  let* kind = str "issue" j in
  match kind with
  | "stale-beyond-lease" ->
      let* time = flt "time" j in
      let* set_id = int_ "set_id" j in
      let* served = int_ "served" j in
      let* required = int_ "required" j in
      let* age = flt "age" j in
      Ok (Stale_beyond_lease { time; set_id; served; required; age })
  | "spec-violation" ->
      let* iteration = int_ "iteration" j in
      let* semantics = str "semantics" j in
      let* where = str "where" j in
      let* message = str "message" j in
      Ok (Spec_violation { iteration; semantics; where; message })
  | "monitor-mismatch" ->
      let* iteration = int_ "iteration" j in
      let* semantics = str "semantics" j in
      let* detail = str "detail" j in
      Ok (Monitor_mismatch { iteration; semantics; detail })
  | "fiber-crash" ->
      let* fiber = str "fiber" j in
      let* exn_text = str "exn" j in
      Ok (Fiber_crash { fiber; exn_text })
  | "stuck-iterator" ->
      let* iteration = int_ "iteration" j in
      let* semantics = str "semantics" j in
      Ok (Stuck_iterator { iteration; semantics })
  | "steps-exhausted" ->
      let* steps = int_ "steps" j in
      Ok (Steps_exhausted { steps })
  | "leaked-fibers" ->
      let* count = int_ "count" j in
      let fibers =
        match Option.bind (Json.member "fibers" j) Json.to_list with
        | Some l -> List.filter_map Json.to_string l
        | None -> []
      in
      Ok (Leaked_fibers { count; fibers })
  | "lost-rpc" ->
      let* count = int_ "count" j in
      Ok (Lost_rpc { count })
  | "commit-lost" ->
      let* opnum = int_ "opnum" j in
      let* op = str "op" j in
      let* node = int_ "node" j in
      Ok (Commit_lost { opnum; op; node })
  | "commit-reordered" ->
      let* opnum = int_ "opnum" j in
      let* first = str "first" j in
      let* second = str "second" j in
      let* node = int_ "node" j in
      Ok (Commit_reordered { opnum; first; second; node })
  | "election-overdue" ->
      let* deadline = flt "deadline" j in
      Ok (Election_overdue { deadline })
  | "shed-divergence" ->
      let* node = int_ "node" j in
      let str_list name =
        match Option.bind (Json.member name j) Json.to_list with
        | Some l -> List.filter_map Json.to_string l
        | None -> []
      in
      Ok (Shed_divergence { node; extra = str_list "extra"; missing = str_list "missing" })
  | k -> Error (Printf.sprintf "unknown issue kind %S" k)
