(** Delta-debugging minimiser for failing plans.

    Given a failing plan and a [run] callback (typically
    [fun p -> (Runner.execute p).issues]), {!minimize} greedily searches
    for a smaller plan whose failure overlaps the original's
    ({!Oracle.same_failure} on the issue lists — categories, not exact
    messages, so shrunk schedules may surface the same bug at a different
    site).  Three reduction passes run to fixpoint:

    - drop one workload op at a time;
    - drop one fault event at a time;
    - shorten fault durations (halve the [at .. heal_at/recover_at]
      window, keeping the heal strictly after the start so the shrunk
      plan still passes {!Weakset_net.Fault.schedule_partition}'s
      validation).

    Every candidate is a full deterministic re-execution, so the search
    is bounded by [max_runs] rather than wall-clock guesswork.  The
    plan's seed, config and budget are never changed: the repro bundle
    of the shrunk plan replays in the same cluster. *)

type stats = {
  runs : int;  (** candidate executions performed *)
  kept : int;  (** candidates that preserved the failure *)
  initial_events : int;  (** {!Gen.event_count} before shrinking *)
  final_events : int;  (** {!Gen.event_count} after shrinking *)
}

(** [minimize ~run ~issues plan] returns the smallest failing plan found
    together with its issue list and search statistics.  [issues] is the
    original failing verdict (must be non-empty).  [max_runs] (default
    [200]) bounds candidate executions. *)
val minimize :
  ?max_runs:int ->
  run:(Gen.plan -> Oracle.issue list) ->
  issues:Oracle.issue list ->
  Gen.plan ->
  Gen.plan * Oracle.issue list * stats
