type t = {
  mutable samples : float list;
  mutable sorted : float array option; (* cache, invalidated by add *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { samples = []; sorted = None; n = 0; sum = 0.0; sumsq = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sumsq -. (float_of_int t.n *. m *. m)) /. float_of_int (t.n - 1) in
    sqrt (Float.max 0.0 var)

let min t =
  if t.n = 0 then invalid_arg "Stats.min: empty";
  t.lo

let max t =
  if t.n = 0 then invalid_arg "Stats.max: empty";
  t.hi

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let a = sorted t in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
  let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
  a.(idx)

let percentile_linear t p =
  if t.n = 0 then invalid_arg "Stats.percentile_linear: empty";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile_linear: p out of range";
  let a = sorted t in
  if t.n = 1 then a.(0)
  else
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let frac = rank -. float_of_int lo in
    if lo >= t.n - 1 then a.(t.n - 1)
    else (a.(lo) *. (1.0 -. frac)) +. (a.(lo + 1) *. frac)

let median t = percentile t 50.0

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f" t.n (mean t) (median t)
      (percentile t 95.0) t.hi

module Histogram = struct
  type h = { lo : float; hi : float; buckets : int; counts : int array }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; buckets; counts = Array.make (buckets + 2) 0 }

  let add h x =
    let idx =
      if x < h.lo then 0
      else if x >= h.hi then h.buckets + 1
      else
        let w = (h.hi -. h.lo) /. float_of_int h.buckets in
        1 + int_of_float ((x -. h.lo) /. w)
    in
    h.counts.(idx) <- h.counts.(idx) + 1

  let counts h = Array.copy h.counts

  let pp fmt h =
    let w = (h.hi -. h.lo) /. float_of_int h.buckets in
    let peak = Array.fold_left Stdlib.max 1 h.counts in
    Format.fprintf fmt "underflow: %d@." h.counts.(0);
    for i = 1 to h.buckets do
      let lo = h.lo +. (float_of_int (i - 1) *. w) in
      let bar = String.make (h.counts.(i) * 40 / peak) '#' in
      Format.fprintf fmt "[%8.2f,%8.2f) %6d %s@." lo (lo +. w) h.counts.(i) bar
    done;
    Format.fprintf fmt "overflow: %d@." h.counts.(h.buckets + 1)
end
