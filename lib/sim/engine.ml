type event = { time : float; seq : int; action : unit -> unit }

type crash = {
  crash_time : float;
  crash_fiber : string;
  crash_exn : exn;
}

type t = {
  mutable now : float;
  mutable seq : int;
  heap : event Pqueue.t;
  root_rng : Rng.t;
  bus : Weakset_obs.Bus.t;
  mutable live : int;
  mutable fiber_counter : int;
  mutable crashed : crash list;
}

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((('a, exn) result -> unit) -> unit) -> 'a Effect.t

let leq_event a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(seed = 1L) ?bus () =
  let bus = match bus with Some b -> b | None -> Weakset_obs.Bus.create () in
  {
    now = 0.0;
    seq = 0;
    heap = Pqueue.create ~leq:leq_event;
    root_rng = Rng.create seed;
    bus;
    live = 0;
    fiber_counter = 0;
    crashed = [];
  }

let now t = t.now
let rng t = t.root_rng
let bus t = t.bus
let metrics t = Weakset_obs.Bus.metrics t.bus
let live_fibers t = t.live
let crashes t = List.rev t.crashed

let schedule t ~after action =
  if after < 0.0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  let at = t.now +. after in
  Weakset_obs.Bus.emit t.bus ~time:t.now (Weakset_obs.Event.Sched { at });
  Pqueue.push t.heap { time = at; seq = t.seq; action }

let sleep _t d = Effect.perform (Sleep d)
let yield _t = Effect.perform (Sleep 0.0)
let suspend _t register = Effect.perform (Suspend register)

(* Each scheduler handoff to a fiber is bracketed by Run_begin/Run_end
   events so a profiler can reconstruct per-fiber wait intervals.  Run
   slices have zero virtual duration (time only advances between queue
   pops), so the interesting payload is the *park reason* on Run_end:
   it classifies the wait that follows. *)
let run_fiber t fid name body =
  let open Effect.Deep in
  let emit_begin () =
    Weakset_obs.Bus.emit t.bus ~time:t.now
      (Weakset_obs.Event.Run_begin { fid; fiber = name })
  in
  let emit_end park =
    Weakset_obs.Bus.emit t.bus ~time:t.now
      (Weakset_obs.Event.Run_end { fid; fiber = name; park })
  in
  t.live <- t.live + 1;
  let retc () =
    t.live <- t.live - 1;
    emit_end Weakset_obs.Event.Park_done
  in
  let exnc e =
    t.live <- t.live - 1;
    Weakset_obs.Bus.emit t.bus ~time:t.now
      (Weakset_obs.Event.Fiber_crash
         { fiber = name; exn_text = Printexc.to_string e });
    emit_end Weakset_obs.Event.Park_crash;
    t.crashed <- { crash_time = t.now; crash_fiber = name; crash_exn = e } :: t.crashed
  in
  let effc : type b. b Effect.t -> ((b, unit) continuation -> unit) option = function
    | Sleep d ->
        Some
          (fun k ->
            let d = Float.max 0.0 d in
            emit_end
              (if d = 0.0 then Weakset_obs.Event.Park_yield
               else Weakset_obs.Event.Park_sleep (t.now +. d));
            schedule t ~after:d (fun () ->
                emit_begin ();
                continue k ()))
    | Suspend register ->
        Some
          (fun k ->
            emit_end Weakset_obs.Event.Park_suspend;
            let resumed = ref false in
            let resume r =
              if not !resumed then begin
                resumed := true;
                schedule t ~after:0.0 (fun () ->
                    emit_begin ();
                    match r with Ok v -> continue k v | Error e -> discontinue k e)
              end
            in
            register resume)
    | _ -> None
  in
  emit_begin ();
  match_with body () { retc; exnc; effc }

let spawn t ?name body =
  t.fiber_counter <- t.fiber_counter + 1;
  let fid = t.fiber_counter in
  let name = match name with Some n -> n | None -> Printf.sprintf "fiber-%d" fid in
  Weakset_obs.Bus.emit t.bus ~time:t.now
    (Weakset_obs.Event.Fiber_spawn { fid; fiber = name });
  schedule t ~after:0.0 (fun () -> run_fiber t fid name body)

let run ?(until = infinity) ?(max_steps = max_int) t =
  let steps = ref 0 in
  let continue_run = ref true in
  while !continue_run && !steps < max_steps do
    match Pqueue.peek t.heap with
    | None -> continue_run := false
    | Some ev when ev.time > until -> continue_run := false
    | Some _ ->
        (match Pqueue.pop t.heap with
        | None -> continue_run := false
        | Some ev ->
            t.now <- Float.max t.now ev.time;
            incr steps;
            ev.action ())
  done;
  !steps

let run_and_check t =
  let (_ : int) = run t in
  match crashes t with
  | [] -> ()
  | { crash_fiber; crash_exn; crash_time } :: _ ->
      failwith
        (Printf.sprintf "fiber %s crashed at t=%.3f: %s" crash_fiber crash_time
           (Printexc.to_string crash_exn))
