(** Deterministic discrete-event simulation engine with cooperative fibers.

    The engine maintains a virtual clock and a priority queue of events.
    Fibers are ordinary OCaml functions executed under an effect handler:
    when a fiber performs {!sleep} or {!suspend} it is parked and the engine
    proceeds to the next event.  Ties in the event queue are broken by a
    monotonically increasing sequence number, so runs are exactly
    reproducible.

    A fiber that raises an uncaught exception does not abort the simulation;
    the crash is recorded and visible through {!crashes} so tests can assert
    that no fiber died unexpectedly. *)

type t

(** A record of a fiber that terminated with an uncaught exception. *)
type crash = {
  crash_time : float;    (** virtual time of the crash *)
  crash_fiber : string;  (** fiber name *)
  crash_exn : exn;
}

(** [create ?seed ?bus ()] makes a fresh engine with virtual time 0.
    [seed] (default [1L]) initialises the engine's root {!Rng.t}.  [bus]
    (fresh by default) is the observability bus every subsystem of this
    engine publishes typed events to; pass one in to share a metrics
    registry across engines. *)
val create : ?seed:int64 -> ?bus:Weakset_obs.Bus.t -> unit -> t

(** Current virtual time. *)
val now : t -> float

(** The engine's root random stream.  Subsystems should {!Rng.split} it. *)
val rng : t -> Rng.t

(** The engine's typed event bus.  All subsystems (net, store, dynamic,
    spec instrumentation) publish {!Weakset_obs.Event.t}s here; attach
    ring/JSONL/digest sinks to observe a run.  Every scheduler handoff
    to a fiber is bracketed by [Run_begin]/[Run_end] events (the legacy
    [Tracer] mirror is gone), so profilers can attribute waiting time
    per fiber. *)
val bus : t -> Weakset_obs.Bus.t

(** Shorthand for [Weakset_obs.Bus.metrics (bus t)]. *)
val metrics : t -> Weakset_obs.Metrics.t

(** [schedule t ~after f] runs callback [f] at virtual time [now t +. after].
    [after] must be non-negative. *)
val schedule : t -> after:float -> (unit -> unit) -> unit

(** [spawn t ~name f] starts fiber [f] at the current virtual time. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** Number of fibers that have been spawned and not yet finished. *)
val live_fibers : t -> int

(** Fibers that terminated with an uncaught exception, oldest first. *)
val crashes : t -> crash list

(** {1 Operations usable only inside a fiber} *)

(** [sleep t d] parks the calling fiber for [d] units of virtual time. *)
val sleep : t -> float -> unit

(** [yield t] reschedules the calling fiber at the current time, letting
    other ready fibers run first. *)
val yield : t -> unit

(** [suspend t register] parks the calling fiber.  [register] is called
    immediately with a [resume] function; whoever calls [resume (Ok v)]
    (or [resume (Error e)]) first wakes the fiber with [v] (or raises [e]
    inside it).  Later calls to [resume] are ignored, which makes racing a
    timer against a wakeup safe. *)
val suspend : t -> ((('a, exn) result -> unit) -> unit) -> 'a

(** {1 Running} *)

(** [run ?until ?max_steps t] processes events in time order until the queue
    is empty, virtual time would exceed [until], or [max_steps] events have
    run.  Returns the number of events processed. *)
val run : ?until:float -> ?max_steps:int -> t -> int

(** [run_and_check t] runs to quiescence and raises [Failure] if any fiber
    crashed, including the first crash's exception text in the message. *)
val run_and_check : t -> unit
