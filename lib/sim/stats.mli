(** Online statistics accumulators for experiment harnesses. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float

(** Sample standard deviation (0 for fewer than two samples). *)
val stddev : t -> float

(** Smallest/largest sample.  Raise [Invalid_argument] on an empty
    accumulator (they used to return [infinity]/[neg_infinity], which
    silently poisoned downstream arithmetic). *)
val min : t -> float

val max : t -> float

(** [percentile t p] with [p] in \[0,100\], by nearest-rank on the sorted
    samples.  Raises [Invalid_argument] on an empty accumulator. *)
val percentile : t -> float -> float

(** [percentile_linear t p] interpolates linearly between the two
    samples bracketing rank [p/100 * (n-1)], so p95 on small [n] isn't
    just the max sample.  Raises [Invalid_argument] on an empty
    accumulator or [p] outside \[0,100\]. *)
val percentile_linear : t -> float -> float

val median : t -> float

(** One-line human-readable summary: n, mean, p50, p95, max. *)
val summary : t -> string

(** A fixed-width-bucket histogram over \[lo, hi). *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit

  (** [counts h] includes underflow and overflow as the first and last
    entries of the returned array of length [buckets + 2]. *)
  val counts : h -> int array

  val pp : Format.formatter -> h -> unit
end
