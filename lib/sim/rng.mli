(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows from values of this type so that
    every scenario is exactly reproducible from its seed.  The generator is
    the splitmix64 algorithm of Steele, Lea and Flood, which has a 64-bit
    state, passes BigCrush, and supports cheap stream splitting. *)

type t

(** [create seed] returns a fresh generator whose stream is a pure function
    of [seed]. *)
val create : int64 -> t

(** [split t] derives an independent generator from [t], advancing [t].
    Used to give subsystems (fault injector, workload, service times) their
    own streams so adding draws to one does not perturb the others. *)
val split : t -> t

(** [copy t] duplicates the current state (the copies then evolve
    independently but identically under identical draws). *)
val copy : t -> t

(** [next t] returns the next raw 64-bit output. *)
val next : t -> int64

(** [int t bound] is uniform in \[0, bound).  Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in \[0, bound). *)
val float : t -> float -> float

(** [uniform t lo hi] is uniform in \[lo, hi). *)
val uniform : t -> float -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to \[0,1\]). *)
val chance : t -> float -> bool

(** [exponential t ~mean] draws from an exponential distribution; used for
    inter-arrival and failure/repair times. *)
val exponential : t -> mean:float -> float

(** [geometric t ~p] draws from the geometric distribution on
    [{1, 2, ...}] (number of Bernoulli([p]) trials up to and including
    the first success); mean [1/p].  Used for burst sizes in the bursty
    open-loop arrival process.  Raises [Invalid_argument] unless
    [p] is in (0, 1]. *)
val geometric : t -> p:float -> int

(** [pick t arr] returns a uniformly chosen element of [arr].
    Requires the array to be non-empty. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] returns a uniformly chosen element of [l].
    Requires the list to be non-empty. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
