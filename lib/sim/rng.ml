type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next t)

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bias is negligible for simulation
     bounds (far below 2^63) and determinism is what matters. *)
  (* Keep 62 bits so the value fits in a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0, 1]";
  if p >= 1.0 then 1
  else begin
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    (* Inverse CDF of the geometric distribution on {1, 2, ...}. *)
    1 + int_of_float (Float.floor (log u /. Float.log1p (-.p)))
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
