# One-command tier-1 verification: build + tests (including the trace
# determinism suite in test/test_obs.ml) + formatting check.

.PHONY: check build test fmt fmt-fix bench bench-compare e12-smoke e13-smoke admission-smoke vopr-smoke blackbox-smoke repl-smoke clean

check: build test fmt bench-compare e12-smoke e13-smoke admission-smoke vopr-smoke blackbox-smoke repl-smoke

build:
	dune build @all

test:
	dune runtest

# ocamlformat may be absent in minimal containers; skip (with a notice)
# rather than fail the whole check.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt || { echo "fmt check failed: run 'make fmt-fix'"; exit 1; }; \
	else \
		echo "ocamlformat not installed; skipping fmt check"; \
	fi

fmt-fix:
	dune fmt

bench:
	dune exec bench/main.exe -- --no-micro

# Smoke test for the regression gate: the committed baseline must compare
# clean against itself (schema readable, every metric within tolerance).
bench-compare:
	dune exec bench/main.exe -- --compare BENCH_baseline.json BENCH_baseline.json

# E12 head-to-head: all five design points (incl. the lin snapshot
# iterator) on quiet + churn workloads, every row judged by the
# parametric checker.  The gate demands conforming verdicts present
# and no VIOLATES cell anywhere in the table.
e12-smoke:
	dune exec bench/main.exe -- --e12 | tee /tmp/e12-smoke.out
	@grep -q "conforms" /tmp/e12-smoke.out \
	  || { echo "e12-smoke: no verdicts in E12 output"; exit 1; }
	@! grep -q "VIOLATES" /tmp/e12-smoke.out \
	  || { echo "e12-smoke: E12 reported a spec violation"; exit 1; }

# Short open-loop saturation sweep: every design point must detect a
# finite knee, and the curves JSON must be byte-identical across reruns
# (the determinism contract behind --curves-json).  The full-size sweep
# runs via `bench/main.exe -- --e13`; this scaled-down config keeps the
# smoke under a few seconds.
e13-smoke:
	dune exec bench/main.exe -- --e13 --load-clients 16 --load-duration 100 \
	  --curves-json curves.json | tee /tmp/e13-smoke.out
	@grep -q "KNEE" /tmp/e13-smoke.out \
	  || { echo "e13-smoke: no knee detected in E13 output"; exit 1; }
	@! grep -q '"knee":null' curves.json \
	  || { echo "e13-smoke: a design point has no knee in curves.json"; exit 1; }
	dune exec bench/main.exe -- --e13 --load-clients 16 --load-duration 100 \
	  --curves-json /tmp/e13-smoke-2.json > /dev/null
	@cmp -s curves.json /tmp/e13-smoke-2.json \
	  || { echo "e13-smoke: curves.json is not byte-identical across reruns"; exit 1; }

# E13b admission on/off ladder at smoke size: the run itself asserts the
# overload-survival contract (admission-on knee no earlier than off, zero
# sheds below the knee, p999 strictly lower at saturation) and prints
# ADMISSION PASS; the rerun must produce byte-identical curves, and the
# trace must render a non-empty overload anatomy (sheds by class).
admission-smoke:
	dune exec bench/main.exe -- --e13 --admission --load-clients 16 --load-duration 100 \
	  --curves-json admission-curves.json --trace-jsonl /tmp/admission-smoke.jsonl \
	  | tee /tmp/admission-smoke.out
	@grep -q "ADMISSION PASS" /tmp/admission-smoke.out \
	  || { echo "admission-smoke: E13b assertions did not pass"; exit 1; }
	dune exec bench/main.exe -- --e13 --admission --load-clients 16 --load-duration 100 \
	  --curves-json /tmp/admission-smoke-2.json > /dev/null
	@cmp -s admission-curves.json /tmp/admission-smoke-2.json \
	  || { echo "admission-smoke: admission-curves.json is not byte-identical across reruns"; exit 1; }
	dune exec bin/weakset_trace.exe -- saturation --overload /tmp/admission-smoke.jsonl \
	  | tee /tmp/admission-smoke-trace.out > /dev/null
	@grep -q "server sheds by op class" /tmp/admission-smoke-trace.out \
	  || { echo "admission-smoke: trace rendered no shed anatomy"; exit 1; }

# Bounded VOPR swarm: 32 seed-derived scenarios (virtual-time budgets keep
# this well under a minute of wall clock), plus the mutation tests — the
# planted grow-only bug, the planted cache Inval drop and the planted
# membership-axiom flip in the parametric checker must each be caught
# within the same seed range.  Repro bundles for any failure land in
# vopr-bundles/ (CI uploads them).
vopr-smoke:
	rm -rf vopr-bundles && mkdir -p vopr-bundles
	dune exec bin/weakset_vopr.exe -- run --seeds 0..32 --bundle-dir vopr-bundles --quiet
	dune exec bin/weakset_vopr.exe -- run --seeds 0..32 --planted-bug --no-shrink --quiet; \
	  test $$? -eq 1 || { echo "vopr-smoke: planted bug was NOT detected"; exit 1; }
	dune exec bin/weakset_vopr.exe -- run --seeds 0..32 --planted-cache-bug --no-shrink --quiet; \
	  test $$? -eq 1 || { echo "vopr-smoke: planted cache bug was NOT detected"; exit 1; }
	dune exec bin/weakset_vopr.exe -- run --seeds 0..32 --planted-spec-bug --no-shrink --quiet; \
	  test $$? -eq 1 || { echo "vopr-smoke: planted spec bug was NOT detected"; exit 1; }

# Replication-group cluster scenarios: the full table (every row run
# twice, digests byte-identical — including the retry-storm and
# shed-under-partition overload rows) must pass; the planted view-change
# log drop must be caught by the oracle's commit-safety verdicts, and the
# planted shed-after-apply bug by its shed-divergence verdict.
# Repro bundles for any failing row land in repl-bundles/ (CI uploads
# them); re-run a single row with `scenarios --only NAME`.
repl-smoke:
	rm -rf repl-bundles && mkdir -p repl-bundles
	dune exec bin/weakset_vopr.exe -- scenarios --bundle-dir repl-bundles --quiet
	dune exec bin/weakset_vopr.exe -- scenarios --planted-commit-bug --quiet; \
	  test $$? -eq 1 || { echo "repl-smoke: planted commit bug was NOT detected"; exit 1; }
	dune exec bin/weakset_vopr.exe -- scenarios --only retry-storm --planted-shed-bug --quiet; \
	  test $$? -eq 1 || { echo "repl-smoke: planted shed bug was NOT detected"; exit 1; }

# Flight-recorder end-to-end: an armed planted-bug run must trigger at
# least one black-box dump, and rendering the dumps must resolve at
# least one tail exemplar back to a full span tree.
blackbox-smoke:
	rm -rf blackbox-dumps && mkdir -p blackbox-dumps
	dune exec bin/weakset_vopr.exe -- run --seeds 0..32 --planted-bug --no-shrink --quiet \
	  --blackbox-dir blackbox-dumps; \
	  test $$? -eq 1 || { echo "blackbox-smoke: planted bug was NOT detected"; exit 1; }
	@ls blackbox-dumps/blackbox-seed-*.json >/dev/null 2>&1 \
	  || { echo "blackbox-smoke: no black-box dump was written"; exit 1; }
	dune exec bin/weakset_trace.exe -- blackbox blackbox-dumps/blackbox-seed-*.json \
	  | tee /tmp/blackbox-smoke.out
	@grep -q "exemplar span tree" /tmp/blackbox-smoke.out \
	  || { echo "blackbox-smoke: no exemplar resolved to a span tree"; exit 1; }

clean:
	dune clean
