# One-command tier-1 verification: build + tests (including the trace
# determinism suite in test/test_obs.ml) + formatting check.

.PHONY: check build test fmt fmt-fix bench bench-compare clean

check: build test fmt bench-compare

build:
	dune build @all

test:
	dune runtest

# ocamlformat may be absent in minimal containers; skip (with a notice)
# rather than fail the whole check.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt || { echo "fmt check failed: run 'make fmt-fix'"; exit 1; }; \
	else \
		echo "ocamlformat not installed; skipping fmt check"; \
	fi

fmt-fix:
	dune fmt

bench:
	dune exec bench/main.exe -- --no-micro

# Smoke test for the regression gate: the committed baseline must compare
# clean against itself (schema readable, every metric within tolerance).
bench-compare:
	dune exec bench/main.exe -- --compare BENCH_baseline.json BENCH_baseline.json

clean:
	dune clean
