(* Trace-analysis CLI over JSONL traces written by `weakset_bench
   --trace-jsonl`.  Deterministic output: the same trace file renders
   byte-identically, so CI can diff runs. *)

module Trace = Weakset_obs.Trace
module Profile = Weakset_obs.Profile

let usage =
  "usage: weakset_trace <command> [options] FILE...\n\n\
   commands:\n\
  \  tree FILE        print the reconstructed span forest of each world\n\
  \  critpath FILE    critical path and per-phase attribution per request\n\
  \  stats FILE       event/span/rpc/lamport summary per world\n\
  \  profile FILE     simulated-time profile: top-k hot fibers and hot ops\n\
  \  flame FILE       folded-stack flamegraph text (fiber;span;...;wait dur)\n\
  \  anomalies FILE   flag unclosed spans, orphan parents, unfinished rpcs,\n\
  \                   lamport violations (exit 1 if any found)\n\
  \  diff FILE FILE   digest-aligned prefix diff of two traces\n\
  \  blackbox FILE..  render flight-recorder dumps (or the dumps embedded\n\
  \                   in VOPR repro bundles): trigger, tail exemplars and\n\
  \                   their reconstructed span trees\n\
  \  saturation FILE  attribute the latency tail of open-loop request spans\n\
  \                   to phases via critical-path self time (run against a\n\
  \                   trace from weakset_bench --e13 --trace-jsonl)\n\n\
   options:\n\
  \  --world NAME     restrict to the named world segment\n\
  \  --no-times       (tree) structure only: no ids, times or durations\n\
  \  --max-depth N    (tree) truncate below depth N\n\
  \  --top K          (profile) table depth, default 10\n\
  \  --slow-pct P     (anomalies) also flag spans above their name's\n\
  \                   P-th duration percentile\n\
  \  --json           (blackbox) machine-readable: one JSON object per dump\n\
  \                   on its own line instead of the rendered report\n\
  \  --op NAME        (saturation) request span name, default load.request\n\
  \  --tail-pct P     (saturation) tail cut percentile in [0,100], default 90\n\
  \  --overload       (saturation) also render the overload anatomy: server\n\
  \                   sheds by op class and client retries by outcome\n"

let die fmt = Printf.ksprintf (fun s -> prerr_string s; prerr_newline (); exit 2) fmt

let usage_die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_string ("weakset_trace: " ^ s ^ "\n\n" ^ usage);
      exit 2)
    fmt

(* Strict parsing: every flag must be known to the subcommand at hand,
   every known flag must get a well-formed non-flag value, and the
   positional count must match. *)
type opts = {
  mutable world : string option;
  mutable times : bool;
  mutable max_depth : int option;
  mutable top : int;
  mutable slow_pct : float option;
  mutable json : bool;
  mutable op : string;
  mutable tail_pct : float;
  mutable overload : bool;
  mutable files : string list;
}

let flag_like v = String.length v > 0 && v.[0] = '-'

(* Which options each subcommand understands; --world applies to all. *)
let allowed_for = function
  | "tree" -> [ "--no-times"; "--max-depth" ]
  | "profile" -> [ "--top" ]
  | "anomalies" -> [ "--slow-pct" ]
  | "blackbox" -> [ "--json" ]
  | "saturation" -> [ "--op"; "--tail-pct"; "--overload" ]
  | _ -> []

let parse_args cmd args =
  let o =
    {
      world = None;
      times = true;
      max_depth = None;
      top = 10;
      slow_pct = None;
      json = false;
      op = "load.request";
      tail_pct = 90.0;
      overload = false;
      files = [];
    }
  in
  let allowed = "--world" :: allowed_for cmd in
  let permit flag =
    if not (List.mem flag allowed) then usage_die "%s does not apply to %S" flag cmd
  in
  let value flag v =
    if flag_like v then usage_die "%s expects a value, got option %S" flag v;
    v
  in
  let rec go = function
    | [] -> ()
    | "--world" :: v :: rest ->
        o.world <- Some (value "--world" v);
        go rest
    | "--no-times" :: rest ->
        permit "--no-times";
        o.times <- false;
        go rest
    | "--max-depth" :: v :: rest -> (
        permit "--max-depth";
        match int_of_string_opt (value "--max-depth" v) with
        | Some n when n >= 0 ->
            o.max_depth <- Some n;
            go rest
        | _ -> usage_die "--max-depth expects a non-negative integer, got %S" v)
    | "--top" :: v :: rest -> (
        permit "--top";
        match int_of_string_opt (value "--top" v) with
        | Some n when n > 0 ->
            o.top <- n;
            go rest
        | _ -> usage_die "--top expects a positive integer, got %S" v)
    | "--slow-pct" :: v :: rest -> (
        permit "--slow-pct";
        match float_of_string_opt (value "--slow-pct" v) with
        | Some p when p >= 0.0 && p <= 100.0 ->
            o.slow_pct <- Some p;
            go rest
        | _ -> usage_die "--slow-pct expects a percentile in [0,100], got %S" v)
    | "--json" :: rest ->
        permit "--json";
        o.json <- true;
        go rest
    | "--op" :: v :: rest ->
        permit "--op";
        o.op <- value "--op" v;
        go rest
    | "--tail-pct" :: v :: rest -> (
        permit "--tail-pct";
        match float_of_string_opt (value "--tail-pct" v) with
        | Some p when p >= 0.0 && p <= 100.0 ->
            o.tail_pct <- p;
            go rest
        | _ -> usage_die "--tail-pct expects a percentile in [0,100], got %S" v)
    | "--overload" :: rest ->
        permit "--overload";
        o.overload <- true;
        go rest
    | [ ("--world" | "--max-depth" | "--top" | "--slow-pct" | "--op" | "--tail-pct") ] ->
        usage_die "missing value for final option"
    | f :: _ when flag_like f -> usage_die "unknown option %S" f
    | f :: rest ->
        o.files <- o.files @ [ f ];
        go rest
  in
  go args;
  o

let load o file =
  let segs = try Trace.load_file file with
    | Trace.Malformed m -> die "weakset_trace: %s" m
    | Sys_error m -> die "weakset_trace: %s" m
  in
  match o.world with
  | None -> segs
  | Some w -> (
      match List.filter (fun s -> s.Trace.sname = w) segs with
      | [] ->
          die "weakset_trace: no world %S in %s (have: %s)" w file
            (String.concat ", "
               (List.map (fun s -> Printf.sprintf "%S" s.Trace.sname) segs))
      | picked -> picked)

let header seg =
  if seg.Trace.sname = "" then "" else Printf.sprintf "== world: %s ==\n" seg.Trace.sname

let one_file o = function
  | [ f ] -> load o f
  | files -> usage_die "expected exactly one FILE, got %d" (List.length files)

let per_segment render =
  List.iter (fun seg ->
      print_string (header seg);
      print_string (render (Trace.of_segment seg)))

(* --- blackbox dumps --------------------------------------------------- *)

module Flight = Weakset_obs.Flight
module Json = Weakset_obs.Json

(* A file is either one dump document or a VOPR repro bundle carrying
   dumps as escaped strings under "blackbox". *)
let dumps_of_file file =
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error m -> die "weakset_trace: %s" m
  in
  match Json.of_string_opt (String.trim text) with
  | None -> die "weakset_trace: %s: not valid JSON" file
  | Some j -> (
      match Json.member "blackbox_version" j with
      | Some _ -> [ String.trim text ]
      | None -> (
          match Json.member "blackbox" j with
          | Some (Json.Arr l) -> List.filter_map Json.to_string l
          | _ ->
              die "weakset_trace: %s: neither a black-box dump nor a bundle with one"
                file))

let rec render_span buf tr depth (sp : Trace.span) =
  let indent = String.make (2 * depth) ' ' in
  Buffer.add_string buf
    (Printf.sprintf "%s%s [span %d%s] start=%g%s\n" indent sp.Trace.name sp.Trace.id
       (match sp.Trace.node with None -> "" | Some n -> Printf.sprintf " node=%d" n)
       sp.Trace.start_time
       (match Trace.span_dur sp with
       | Some d -> Printf.sprintf " dur=%g" d
       | None -> " (unclosed)"));
  List.iter
    (fun cid -> Option.iter (render_span buf tr (depth + 1)) (Trace.span tr cid))
    sp.Trace.children

(* Climb to the highest ancestor still present in the ring: the ring may
   have evicted the true root's Span_start, so we render from the oldest
   retained ancestor. *)
let rec resolve_root tr (sp : Trace.span) =
  match sp.Trace.parent with
  | None -> sp
  | Some p -> (
      match Trace.span tr p with None -> sp | Some up -> resolve_root tr up)

let render_dump k doc =
  match Flight.parse_dump doc with
  | Error m -> die "weakset_trace: %s" m
  | Ok p ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "== blackbox dump %d: trigger=%s t=%g ==\n" k p.Flight.p_cause_kind
           p.Flight.p_time);
      Buffer.add_string buf (Printf.sprintf "cause: %s\n" p.Flight.p_cause_detail);
      Buffer.add_string buf
        (Printf.sprintf "suppressed=%d ring-dropped=%d events=%d inflight=%d\n"
           p.Flight.p_suppressed p.Flight.p_dropped
           (List.length p.Flight.p_events)
           (List.length p.Flight.p_inflight));
      if p.Flight.p_inflight <> [] then begin
        Buffer.add_string buf "in-flight spans:\n";
        List.iter
          (fun (id, name) -> Buffer.add_string buf (Printf.sprintf "  span %d: %s\n" id name))
          p.Flight.p_inflight
      end;
      let exemplars = Flight.tail_exemplars p.Flight.p_metrics in
      if exemplars = [] then Buffer.add_string buf "no exemplars recorded\n"
      else begin
        Buffer.add_string buf "tail exemplars (worst first):\n";
        List.iter
          (fun (key, v, tm, span) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s: value=%g t=%g%s\n" key v tm
                 (match span with None -> "" | Some s -> Printf.sprintf " span=%d" s)))
          exemplars;
        let tr = Trace.build p.Flight.p_events in
        let seen_roots = ref [] in
        List.iter
          (fun (key, _, _, span) ->
            match span with
            | None -> ()
            | Some s -> (
                match Trace.span tr s with
                | None ->
                    Buffer.add_string buf
                      (Printf.sprintf "exemplar span %d (%s): not in ring (evicted)\n" s key)
                | Some sp ->
                    let root = resolve_root tr sp in
                    if not (List.mem root.Trace.id !seen_roots) then begin
                      seen_roots := root.Trace.id :: !seen_roots;
                      Buffer.add_string buf
                        (Printf.sprintf "exemplar span tree (span %d via %s):\n" s key);
                      render_span buf tr 1 root
                    end))
          exemplars
      end;
      print_string (Buffer.contents buf)

(* Machine-readable rendering: one JSON object per dump, one per line,
   fields in fixed order, floats as %.17g — pipe into jq, diff in CI. *)
let render_dump_json file k doc =
  match Flight.parse_dump doc with
  | Error m -> die "weakset_trace: %s" m
  | Ok p ->
      let fnum = Printf.sprintf "%.17g" in
      let b = Buffer.create 512 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"file\":%S,\"dump\":%d,\"trigger\":%S,\"time\":%s,\"cause\":%S,\
            \"suppressed\":%d,\"ring_dropped\":%d,\"events\":%d,\"inflight\":["
           file k p.Flight.p_cause_kind (fnum p.Flight.p_time) p.Flight.p_cause_detail
           p.Flight.p_suppressed p.Flight.p_dropped
           (List.length p.Flight.p_events));
      List.iteri
        (fun i (id, name) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "{\"span\":%d,\"name\":%S}" id name))
        p.Flight.p_inflight;
      Buffer.add_string b "],\"exemplars\":[";
      let tr = Trace.build p.Flight.p_events in
      List.iteri
        (fun i (key, v, tm, span) ->
          if i > 0 then Buffer.add_char b ',';
          let span_field, resolved =
            match span with
            | None -> ("null", false)
            | Some s -> (string_of_int s, Trace.span tr s <> None)
          in
          Buffer.add_string b
            (Printf.sprintf
               "{\"metric\":%S,\"value\":%s,\"time\":%s,\"span\":%s,\"resolved\":%b}" key
               (fnum v) (fnum tm) span_field resolved))
        (Flight.tail_exemplars p.Flight.p_metrics);
      Buffer.add_string b "]}\n";
      print_string (Buffer.contents b)

let cmd_blackbox ~json files =
  if files = [] then usage_die "blackbox expects at least one FILE";
  List.iter
    (fun file ->
      match dumps_of_file file with
      | [] ->
          if not json then Printf.printf "== %s: no black-box dumps ==\n" file
      | dumps ->
          List.iteri (if json then render_dump_json file else render_dump) dumps)
    files

(* --- saturation anatomy ----------------------------------------------- *)

let lerp_percentile arr p =
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. arr.(lo)) +. (w *. arr.(hi))
  end

(* Overload anatomy: the admission layer stamps a Custom "srv-shed"
   event per rejected request (detail carries "class=...") and the
   retry-budgeted client a Custom "client-retry" per retry decision
   (detail carries "outcome=...").  Group counts by that token and
   render deterministically (count desc, then name). *)
module Event = Weakset_obs.Event

let token_field detail key =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  List.find_map
    (fun tok ->
      if String.length tok > plen && String.sub tok 0 plen = prefix then
        Some (String.sub tok plen (String.length tok - plen))
      else None)
    (String.split_on_char ' ' detail)

let render_overload buf events =
  let sheds : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let retries : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r -> incr r
    | None -> Hashtbl.add tbl k (ref 1)
  in
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Custom { label = "srv-shed"; detail } ->
          bump sheds (Option.value ~default:"?" (token_field detail "class"))
      | Event.Custom { label = "client-retry"; detail } ->
          bump retries (Option.value ~default:"?" (token_field detail "outcome"))
      | _ -> ())
    events;
  let rows tbl =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
    |> List.sort (fun (na, ca) (nb, cb) ->
           match compare cb ca with 0 -> compare na nb | c -> c)
  in
  let shed_rows = rows sheds and retry_rows = rows retries in
  if shed_rows = [] && retry_rows = [] then
    Buffer.add_string buf "overload anatomy: no shed or retry events in this segment\n"
  else begin
    let total rs = List.fold_left (fun acc (_, c) -> acc + c) 0 rs in
    Buffer.add_string buf
      (Printf.sprintf "overload anatomy: %d shed(s), %d retry decision(s)\n"
         (total shed_rows) (total retry_rows));
    if shed_rows <> [] then begin
      Buffer.add_string buf "  server sheds by op class:\n";
      List.iter
        (fun (cls, n) -> Buffer.add_string buf (Printf.sprintf "    %-10s %8d\n" cls n))
        shed_rows
    end;
    if retry_rows <> [] then begin
      Buffer.add_string buf "  client retries by outcome:\n";
      List.iter
        (fun (oc, n) -> Buffer.add_string buf (Printf.sprintf "    %-10s %8d\n" oc n))
        retry_rows
    end
  end

(* Attribute the tail of the open-loop request population to phases.
   Request spans are back-dated to their intended arrival tick, so a
   request that waited for a free client shows that wait as leading self
   time of the request span itself — the coordinated-omission share of
   the tail appears as the op's own phase, and server/RPC time as the
   [client.*] phases below it. *)
let cmd_saturation o files =
  List.iter
    (fun seg ->
      print_string (header seg);
      let tr = Trace.of_segment seg in
      let closed = List.filter (fun sp -> Trace.span_dur sp <> None) (Trace.roots tr) in
      let named = List.filter (fun sp -> sp.Trace.name = o.op) closed in
      let requests, what =
        if named <> [] then (named, Printf.sprintf "%s request" o.op)
        else (closed, "closed root")
      in
      (match requests with
      | [] -> print_string (Printf.sprintf "no closed %S spans\n" o.op)
      | _ ->
          let durs = Array.of_list (List.filter_map Trace.span_dur requests) in
          Array.sort compare durs;
          let cut = lerp_percentile durs o.tail_pct in
          let tail =
            List.filter
              (fun sp ->
                match Trace.span_dur sp with Some d -> d >= cut | None -> false)
              requests
          in
          let tail_total =
            List.fold_left
              (fun acc sp ->
                match Trace.span_dur sp with Some d -> acc +. d | None -> acc)
              0.0 tail
          in
          Printf.printf
            "%d %s span(s); tail = %d at/above p%g (dur >= %g), %g total\n"
            (List.length requests) what (List.length tail) o.tail_pct cut tail_total;
          let phases : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun sp ->
              List.iter
                (fun (it : Trace.cp_item) ->
                  let self, hits =
                    match Hashtbl.find_opt phases it.Trace.cp_name with
                    | Some cell -> cell
                    | None ->
                        let cell = (ref 0.0, ref 0) in
                        Hashtbl.add phases it.Trace.cp_name cell;
                        cell
                  in
                  self := !self +. it.Trace.cp_self;
                  incr hits)
                (Trace.critical_path tr sp))
            tail;
          let rows =
            Hashtbl.fold (fun name (self, hits) acc -> (name, !self, !hits) :: acc) phases []
          in
          let rows =
            List.sort
              (fun (na, sa, _) (nb, sb, _) ->
                match compare sb sa with 0 -> compare na nb | c -> c)
              rows
          in
          Printf.printf "critical-path self time across the tail (worst phase first):\n";
          Printf.printf "  %-32s %12s %7s %6s\n" "phase" "self" "share" "hits";
          List.iter
            (fun (name, self, hits) ->
              Printf.printf "  %-32s %12.2f %6.1f%% %6d\n" name self
                (if tail_total > 0.0 then 100.0 *. self /. tail_total else 0.0)
                hits)
            rows;
          let slowest =
            List.fold_left
              (fun acc sp ->
                match (acc, Trace.span_dur sp) with
                | None, Some _ -> Some sp
                | Some best, Some d
                  when d > Option.value ~default:0.0 (Trace.span_dur best) ->
                    Some sp
                | _ -> acc)
              None tail
          in
          Option.iter
            (fun sp ->
              Printf.printf "slowest request (span %d, dur=%g):\n" sp.Trace.id
                (Option.value ~default:0.0 (Trace.span_dur sp));
              List.iter
                (fun (it : Trace.cp_item) ->
                  Printf.printf "  %-32s self=%-10.2f [%g -> %g]\n" it.Trace.cp_name
                    it.Trace.cp_self it.Trace.cp_start it.Trace.cp_end)
                (Trace.critical_path tr sp))
            slowest);
      if o.overload then begin
        let buf = Buffer.create 256 in
        render_overload buf seg.Trace.events;
        print_string (Buffer.contents buf)
      end)
    (one_file o files)

let () =
  match Array.to_list Sys.argv with
  | _ :: cmd :: rest -> (
      let o = parse_args cmd rest in
      match cmd with
      | "tree" ->
          per_segment
            (Trace.render_tree ~times:o.times ?max_depth:o.max_depth)
            (one_file o o.files)
      | "critpath" -> per_segment Trace.render_critpath (one_file o o.files)
      | "stats" -> per_segment Trace.render_stats (one_file o o.files)
      | "profile" ->
          List.iter
            (fun seg ->
              print_string (header seg);
              print_string
                (Profile.render_top ~k:o.top (Profile.of_events seg.Trace.events)))
            (one_file o o.files)
      | "flame" ->
          List.iter
            (fun seg ->
              print_string (header seg);
              print_string (Profile.folded (Profile.of_events seg.Trace.events)))
            (one_file o o.files)
      | "anomalies" ->
          let segs = one_file o o.files in
          let found = ref 0 in
          List.iter
            (fun seg ->
              print_string (header seg);
              let tr = Trace.of_segment seg in
              found := !found + List.length (Trace.anomalies ?slow_pct:o.slow_pct tr);
              print_string (Trace.render_anomalies ?slow_pct:o.slow_pct tr))
            segs;
          if !found > 0 then exit 1
      | "diff" -> (
          match o.files with
          | [ fa; fb ] ->
              let sa = load o fa and sb = load o fb in
              let rec pair i = function
                | [], [] -> ()
                | a :: ta, b :: tb ->
                    if a.Trace.sname <> b.Trace.sname then
                      Printf.printf "segment %d: names differ (%S vs %S)\n" i a.sname
                        b.sname
                    else print_string (header a);
                    print_string
                      (Trace.render_diff ~left_name:fa ~right_name:fb a.Trace.events
                         b.Trace.events);
                    pair (i + 1) (ta, tb)
                | extra, [] ->
                    Printf.printf "%s has %d extra world(s)\n" fa (List.length extra)
                | [], extra ->
                    Printf.printf "%s has %d extra world(s)\n" fb (List.length extra)
              in
              pair 0 (sa, sb)
          | files -> usage_die "diff expects exactly two FILEs, got %d" (List.length files))
      | "blackbox" -> cmd_blackbox ~json:o.json o.files
      | "saturation" -> cmd_saturation o o.files
      | "help" | "--help" | "-h" -> print_string usage
      | c -> usage_die "unknown command %S" c)
  | _ ->
      prerr_string usage;
      exit 2
