(* Trace-analysis CLI over JSONL traces written by `weakset_bench
   --trace-jsonl`.  Deterministic output: the same trace file renders
   byte-identically, so CI can diff runs. *)

module Trace = Weakset_obs.Trace
module Profile = Weakset_obs.Profile

let usage =
  "usage: weakset_trace <command> [options] FILE...\n\n\
   commands:\n\
  \  tree FILE        print the reconstructed span forest of each world\n\
  \  critpath FILE    critical path and per-phase attribution per request\n\
  \  stats FILE       event/span/rpc/lamport summary per world\n\
  \  profile FILE     simulated-time profile: top-k hot fibers and hot ops\n\
  \  flame FILE       folded-stack flamegraph text (fiber;span;...;wait dur)\n\
  \  anomalies FILE   flag unclosed spans, orphan parents, unfinished rpcs,\n\
  \                   lamport violations (exit 1 if any found)\n\
  \  diff FILE FILE   digest-aligned prefix diff of two traces\n\n\
   options:\n\
  \  --world NAME     restrict to the named world segment\n\
  \  --no-times       (tree) structure only: no ids, times or durations\n\
  \  --max-depth N    (tree) truncate below depth N\n\
  \  --top K          (profile) table depth, default 10\n\
  \  --slow-pct P     (anomalies) also flag spans above their name's\n\
  \                   P-th duration percentile\n"

let die fmt = Printf.ksprintf (fun s -> prerr_string s; prerr_newline (); exit 2) fmt

let usage_die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_string ("weakset_trace: " ^ s ^ "\n\n" ^ usage);
      exit 2)
    fmt

(* Strict parsing: every flag must be known to the subcommand at hand,
   every known flag must get a well-formed non-flag value, and the
   positional count must match. *)
type opts = {
  mutable world : string option;
  mutable times : bool;
  mutable max_depth : int option;
  mutable top : int;
  mutable slow_pct : float option;
  mutable files : string list;
}

let flag_like v = String.length v > 0 && v.[0] = '-'

(* Which options each subcommand understands; --world applies to all. *)
let allowed_for = function
  | "tree" -> [ "--no-times"; "--max-depth" ]
  | "profile" -> [ "--top" ]
  | "anomalies" -> [ "--slow-pct" ]
  | _ -> []

let parse_args cmd args =
  let o =
    { world = None; times = true; max_depth = None; top = 10; slow_pct = None; files = [] }
  in
  let allowed = "--world" :: allowed_for cmd in
  let permit flag =
    if not (List.mem flag allowed) then usage_die "%s does not apply to %S" flag cmd
  in
  let value flag v =
    if flag_like v then usage_die "%s expects a value, got option %S" flag v;
    v
  in
  let rec go = function
    | [] -> ()
    | "--world" :: v :: rest ->
        o.world <- Some (value "--world" v);
        go rest
    | "--no-times" :: rest ->
        permit "--no-times";
        o.times <- false;
        go rest
    | "--max-depth" :: v :: rest -> (
        permit "--max-depth";
        match int_of_string_opt (value "--max-depth" v) with
        | Some n when n >= 0 ->
            o.max_depth <- Some n;
            go rest
        | _ -> usage_die "--max-depth expects a non-negative integer, got %S" v)
    | "--top" :: v :: rest -> (
        permit "--top";
        match int_of_string_opt (value "--top" v) with
        | Some n when n > 0 ->
            o.top <- n;
            go rest
        | _ -> usage_die "--top expects a positive integer, got %S" v)
    | "--slow-pct" :: v :: rest -> (
        permit "--slow-pct";
        match float_of_string_opt (value "--slow-pct" v) with
        | Some p when p >= 0.0 && p <= 100.0 ->
            o.slow_pct <- Some p;
            go rest
        | _ -> usage_die "--slow-pct expects a percentile in [0,100], got %S" v)
    | [ ("--world" | "--max-depth" | "--top" | "--slow-pct") ] ->
        usage_die "missing value for final option"
    | f :: _ when flag_like f -> usage_die "unknown option %S" f
    | f :: rest ->
        o.files <- o.files @ [ f ];
        go rest
  in
  go args;
  o

let load o file =
  let segs = try Trace.load_file file with
    | Trace.Malformed m -> die "weakset_trace: %s" m
    | Sys_error m -> die "weakset_trace: %s" m
  in
  match o.world with
  | None -> segs
  | Some w -> (
      match List.filter (fun s -> s.Trace.sname = w) segs with
      | [] ->
          die "weakset_trace: no world %S in %s (have: %s)" w file
            (String.concat ", "
               (List.map (fun s -> Printf.sprintf "%S" s.Trace.sname) segs))
      | picked -> picked)

let header seg =
  if seg.Trace.sname = "" then "" else Printf.sprintf "== world: %s ==\n" seg.Trace.sname

let one_file o = function
  | [ f ] -> load o f
  | files -> usage_die "expected exactly one FILE, got %d" (List.length files)

let per_segment render =
  List.iter (fun seg ->
      print_string (header seg);
      print_string (render (Trace.of_segment seg)))

let () =
  match Array.to_list Sys.argv with
  | _ :: cmd :: rest -> (
      let o = parse_args cmd rest in
      match cmd with
      | "tree" ->
          per_segment
            (Trace.render_tree ~times:o.times ?max_depth:o.max_depth)
            (one_file o o.files)
      | "critpath" -> per_segment Trace.render_critpath (one_file o o.files)
      | "stats" -> per_segment Trace.render_stats (one_file o o.files)
      | "profile" ->
          List.iter
            (fun seg ->
              print_string (header seg);
              print_string
                (Profile.render_top ~k:o.top (Profile.of_events seg.Trace.events)))
            (one_file o o.files)
      | "flame" ->
          List.iter
            (fun seg ->
              print_string (header seg);
              print_string (Profile.folded (Profile.of_events seg.Trace.events)))
            (one_file o o.files)
      | "anomalies" ->
          let segs = one_file o o.files in
          let found = ref 0 in
          List.iter
            (fun seg ->
              print_string (header seg);
              let tr = Trace.of_segment seg in
              found := !found + List.length (Trace.anomalies ?slow_pct:o.slow_pct tr);
              print_string (Trace.render_anomalies ?slow_pct:o.slow_pct tr))
            segs;
          if !found > 0 then exit 1
      | "diff" -> (
          match o.files with
          | [ fa; fb ] ->
              let sa = load o fa and sb = load o fb in
              let rec pair i = function
                | [], [] -> ()
                | a :: ta, b :: tb ->
                    if a.Trace.sname <> b.Trace.sname then
                      Printf.printf "segment %d: names differ (%S vs %S)\n" i a.sname
                        b.sname
                    else print_string (header a);
                    print_string
                      (Trace.render_diff ~left_name:fa ~right_name:fb a.Trace.events
                         b.Trace.events);
                    pair (i + 1) (ta, tb)
                | extra, [] ->
                    Printf.printf "%s has %d extra world(s)\n" fa (List.length extra)
                | [], extra ->
                    Printf.printf "%s has %d extra world(s)\n" fb (List.length extra)
              in
              pair 0 (sa, sb)
          | files -> usage_die "diff expects exactly two FILEs, got %d" (List.length files))
      | "help" | "--help" | "-h" -> print_string usage
      | c -> usage_die "unknown command %S" c)
  | _ ->
      prerr_string usage;
      exit 2
