(* Entry point only: the CLI lives in [Vopr_cli] because this unit's own
   module name (Weakset_vopr) shadows the weakset_vopr library alias. *)
let () = Vopr_cli.main ()
