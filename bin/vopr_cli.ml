(* VOPR-style deterministic simulation fuzzer for the weak-set stack.

     weakset_vopr run --seeds 0..32          -- bounded swarm (CI smoke)
     weakset_vopr run --seed 7 --planted-bug -- one seed, bug armed
     weakset_vopr replay bundle.json         -- byte-identical reproduction
     weakset_vopr shrink bundle.json -o min.json

   Every run is a pure function of its seed: the same seed produces the
   same cluster, workload, fault schedule and — via the chained event
   digest — the same trace fingerprint.  Failing seeds are shrunk with
   delta debugging and written as JSON repro bundles. *)

module Gen = Weakset_vopr.Gen
module Oracle = Weakset_vopr.Oracle
module Runner = Weakset_vopr.Runner
module Shrink = Weakset_vopr.Shrink
module Scenario = Weakset_vopr.Scenario

let usage =
  "usage: weakset_vopr COMMAND [options]\n\n\
   commands:\n\
  \  run        sweep seeds, judge each run, bundle (shrunk) failures\n\
  \  replay     re-execute a repro bundle and verify digest + verdict\n\
  \  shrink     minimise a repro bundle's schedule\n\
  \  scenarios  run the table-driven replication-group cluster scenarios\n\n\
   run options:\n\
  \  --seeds A..B         half-open seed range [A, B)  (e.g. 0..32)\n\
  \  --seed N             a single seed (may repeat)\n\
  \  --step-cap N         engine step budget per run (default 1000000)\n\
  \  --bundle-dir DIR     write vopr-seed-N.json for each failing seed\n\
  \  --blackbox-dir DIR   write blackbox-seed-N-K.json flight dumps for failures\n\
  \  --no-shrink          bundle the original, unshrunk schedule\n\
  \  --planted-bug        arm the planted grow-only drop (mutation test)\n\
  \  --planted-cache-bug  arm the planted cache Inval drop (mutation test)\n\
  \  --planted-spec-bug   arm the planted membership-axiom flip (mutation test)\n\
  \  --quiet              only print failures and the summary\n\n\
   replay options:\n\
  \  --step-cap N         engine step budget (default 1000000)\n\
  \  BUNDLE               repro bundle written by run/shrink\n\n\
   shrink options:\n\
  \  --max-runs N         candidate execution budget (default 200)\n\
  \  -o FILE              output bundle (default: overwrite input)\n\
  \  BUNDLE               repro bundle to minimise\n\n\
   scenarios options:\n\
  \  --only NAME          run only this scenario (may repeat)\n\
  \  --list               print the table and exit\n\
  \  --step-cap N         engine step budget per execution (default 1000000)\n\
  \  --bundle-dir DIR     write scenario-NAME.json for each failing row\n\
  \  --planted-commit-bug arm the planted view-change log drop (mutation test)\n\
  \  --planted-shed-bug   arm the planted shed-after-apply (mutation test)\n\
  \  --quiet              only print failures and the summary\n"

let usage_die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_string ("weakset_vopr: " ^ s ^ "\n\n" ^ usage);
      exit 2)
    fmt

let parse_seeds spec =
  match String.index_opt spec '.' with
  | Some i
    when i + 1 < String.length spec
         && spec.[i + 1] = '.'
         && (not (String.contains spec '-'))
         && i > 0 -> (
      let lo = String.sub spec 0 i in
      let hi = String.sub spec (i + 2) (String.length spec - i - 2) in
      match (Int64.of_string_opt lo, Int64.of_string_opt hi) with
      | Some a, Some b when b >= a ->
          List.init (Int64.to_int (Int64.sub b a)) (fun k -> Int64.add a (Int64.of_int k))
      | _ -> usage_die "--seeds expects A..B with integers B >= A, got %S" spec)
  | _ -> usage_die "--seeds expects a range A..B, got %S" spec

let int_arg flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> n
  | _ -> usage_die "%s expects a positive integer, got %S" flag v

(* ------------------------------------------------------------------ *)
(* run                                                                *)
(* ------------------------------------------------------------------ *)

type run_opts = {
  mutable seeds : int64 list;  (** reverse accumulation order *)
  mutable step_cap : int option;
  mutable bundle_dir : string option;
  mutable blackbox_dir : string option;
  mutable no_shrink : bool;
  mutable planted_bug : bool;
  mutable planted_cache_bug : bool;
  mutable planted_spec_bug : bool;
  mutable quiet : bool;
}

let parse_run_args args =
  let o =
    {
      seeds = [];
      step_cap = None;
      bundle_dir = None;
      blackbox_dir = None;
      no_shrink = false;
      planted_bug = false;
      planted_cache_bug = false;
      planted_spec_bug = false;
      quiet = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
        o.seeds <- List.rev_append (parse_seeds v) o.seeds;
        go rest
    | "--seed" :: v :: rest -> (
        match Int64.of_string_opt v with
        | Some s ->
            o.seeds <- s :: o.seeds;
            go rest
        | None -> usage_die "--seed expects an integer, got %S" v)
    | "--step-cap" :: v :: rest ->
        o.step_cap <- Some (int_arg "--step-cap" v);
        go rest
    | "--bundle-dir" :: v :: rest ->
        o.bundle_dir <- Some v;
        go rest
    | "--blackbox-dir" :: v :: rest ->
        o.blackbox_dir <- Some v;
        go rest
    | "--no-shrink" :: rest ->
        o.no_shrink <- true;
        go rest
    | "--planted-bug" :: rest ->
        o.planted_bug <- true;
        go rest
    | "--planted-cache-bug" :: rest ->
        o.planted_cache_bug <- true;
        go rest
    | "--planted-spec-bug" :: rest ->
        o.planted_spec_bug <- true;
        go rest
    | "--quiet" :: rest ->
        o.quiet <- true;
        go rest
    | [ (("--seeds" | "--seed" | "--step-cap" | "--bundle-dir" | "--blackbox-dir") as flag) ] ->
        usage_die "%s expects an argument" flag
    | a :: _ -> usage_die "run: unknown argument %S" a
  in
  go args;
  if o.seeds = [] then usage_die "run: no seeds given (use --seeds A..B or --seed N)";
  o.seeds <- List.rev o.seeds;
  o

let cmd_run args =
  let o = parse_run_args args in
  Weakset_core.Impl_common.planted_grow_only_drop := o.planted_bug;
  Weakset_store.Cache.planted_inval_drop := o.planted_cache_bug;
  Weakset_spec.Visibility.planted_axiom_mutation := o.planted_spec_bug;
  let failures = ref 0 in
  let progress seed (r : Runner.result) =
    if r.issues = [] then begin
      if not o.quiet then
        Printf.printf "seed %Ld: PASS  (%d events, digest %s)\n%!" seed r.events
          (String.sub r.digest 0 12)
    end
    else begin
      incr failures;
      Printf.printf "seed %Ld: FAIL  (%d events)\n%!" seed r.events;
      List.iter (fun i -> Printf.printf "  - %s\n%!" (Oracle.describe i)) r.issues;
      let bundled =
        if o.no_shrink then r
        else begin
          let run p = (Runner.execute ?step_cap:o.step_cap p).issues in
          let plan', _issues', st = Shrink.minimize ~run ~issues:r.issues r.plan in
          let r' = Runner.execute ?step_cap:o.step_cap plan' in
          Printf.printf "  shrunk %d -> %d schedule events in %d runs\n%!" st.initial_events
            st.final_events st.runs;
          r'
        end
      in
      Option.iter
        (fun dir ->
          let path = Filename.concat dir (Printf.sprintf "vopr-seed-%Ld.json" seed) in
          Runner.write_bundle ~path (Runner.bundle_of_result bundled);
          Printf.printf "  bundle: %s\n%!" path)
        o.bundle_dir;
      (* Flight dumps of the original failing run: the incident's own
         forensics, before shrinking rewrote the schedule. *)
      Option.iter
        (fun dir ->
          List.iteri
            (fun k (d : Weakset_obs.Flight.dump) ->
              let path =
                Filename.concat dir (Printf.sprintf "blackbox-seed-%Ld-%d.json" seed k)
              in
              let oc = open_out path in
              output_string oc d.d_json;
              output_char oc '\n';
              close_out oc;
              Printf.printf "  blackbox: %s (%s)\n%!" path
                (Weakset_obs.Flight.cause_label d.d_cause))
            r.blackbox)
        o.blackbox_dir
    end
  in
  let results = Runner.sweep ?step_cap:o.step_cap ~progress o.seeds in
  Printf.printf "vopr: %d seed(s), %d failure(s)\n%!" (List.length results) !failures;
  exit (if !failures > 0 then 1 else 0)

(* ------------------------------------------------------------------ *)
(* replay                                                             *)
(* ------------------------------------------------------------------ *)

type replay_opts = { mutable r_step_cap : int option; mutable r_bundle : string option }

let parse_replay_args args =
  let o = { r_step_cap = None; r_bundle = None } in
  let rec go = function
    | [] -> ()
    | "--step-cap" :: v :: rest ->
        o.r_step_cap <- Some (int_arg "--step-cap" v);
        go rest
    | [ "--step-cap" ] -> usage_die "--step-cap expects an argument"
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage_die "replay: unknown option %S" a
    | path :: rest ->
        if o.r_bundle <> None then usage_die "replay: more than one bundle given";
        o.r_bundle <- Some path;
        go rest
  in
  go args;
  o

let load_bundle path =
  match Runner.read_bundle ~path with
  | Ok b -> b
  | Error m ->
      prerr_endline (Printf.sprintf "weakset_vopr: cannot load %s: %s" path m);
      exit 1

let cmd_replay args =
  let o = parse_replay_args args in
  let path = match o.r_bundle with Some p -> p | None -> usage_die "replay: no bundle given" in
  let b = load_bundle path in
  match Runner.replay ?step_cap:o.r_step_cap b with
  | Runner.Reproduced r ->
      Printf.printf "reproduced: seed %Ld, digest %s over %d events, %d issue(s)\n" b.b_plan.seed
        r.digest r.events (List.length r.issues);
      List.iter (fun i -> Printf.printf "  - %s\n" (Oracle.describe i)) r.issues;
      exit 0
  | Runner.Digest_mismatch { got; expected } ->
      Printf.printf "DIGEST MISMATCH: expected %s over %d events, got %s over %d events\n"
        expected b.b_events got.digest got.events;
      exit 1
  | Runner.Verdict_mismatch got ->
      Printf.printf "VERDICT MISMATCH: digest matches but issues differ\n";
      Printf.printf "  recorded:\n";
      List.iter (fun i -> Printf.printf "    - %s\n" (Oracle.describe i)) b.b_issues;
      Printf.printf "  replayed:\n";
      List.iter (fun i -> Printf.printf "    - %s\n" (Oracle.describe i)) got.issues;
      exit 1

(* ------------------------------------------------------------------ *)
(* shrink                                                             *)
(* ------------------------------------------------------------------ *)

type shrink_opts = {
  mutable s_max_runs : int option;
  mutable s_out : string option;
  mutable s_bundle : string option;
}

let parse_shrink_args args =
  let o = { s_max_runs = None; s_out = None; s_bundle = None } in
  let rec go = function
    | [] -> ()
    | "--max-runs" :: v :: rest ->
        o.s_max_runs <- Some (int_arg "--max-runs" v);
        go rest
    | "-o" :: v :: rest ->
        o.s_out <- Some v;
        go rest
    | [ (("--max-runs" | "-o") as flag) ] -> usage_die "%s expects an argument" flag
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage_die "shrink: unknown option %S" a
    | path :: rest ->
        if o.s_bundle <> None then usage_die "shrink: more than one bundle given";
        o.s_bundle <- Some path;
        go rest
  in
  go args;
  o

let cmd_shrink args =
  let o = parse_shrink_args args in
  let path = match o.s_bundle with Some p -> p | None -> usage_die "shrink: no bundle given" in
  let b = load_bundle path in
  Weakset_core.Impl_common.planted_grow_only_drop := b.b_planted;
  Weakset_store.Cache.planted_inval_drop := b.b_planted_cache;
  Weakset_spec.Visibility.planted_axiom_mutation := b.b_planted_spec;
  let issues =
    match b.b_issues with
    | [] ->
        prerr_endline "weakset_vopr: bundle records a passing run; nothing to shrink";
        exit 1
    | l -> l
  in
  let run p = (Runner.execute p).issues in
  let plan', _, st = Shrink.minimize ?max_runs:o.s_max_runs ~run ~issues b.b_plan in
  let r' = Runner.execute plan' in
  Printf.printf "shrunk %d -> %d schedule events (%d candidate runs, %d kept)\n"
    st.initial_events st.final_events st.runs st.kept;
  let out = Option.value o.s_out ~default:path in
  Runner.write_bundle ~path:out (Runner.bundle_of_result r');
  Printf.printf "bundle: %s (%d issue(s))\n" out (List.length r'.issues);
  exit 0

(* ------------------------------------------------------------------ *)
(* scenarios                                                          *)
(* ------------------------------------------------------------------ *)

type scenario_opts = {
  mutable sc_only : string list;  (** reverse accumulation order *)
  mutable sc_list : bool;
  mutable sc_step_cap : int option;
  mutable sc_bundle_dir : string option;
  mutable sc_planted : bool;
  mutable sc_planted_shed : bool;
  mutable sc_quiet : bool;
}

let parse_scenario_args args =
  let o =
    {
      sc_only = [];
      sc_list = false;
      sc_step_cap = None;
      sc_bundle_dir = None;
      sc_planted = false;
      sc_planted_shed = false;
      sc_quiet = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--only" :: v :: rest ->
        o.sc_only <- v :: o.sc_only;
        go rest
    | "--list" :: rest ->
        o.sc_list <- true;
        go rest
    | "--step-cap" :: v :: rest ->
        o.sc_step_cap <- Some (int_arg "--step-cap" v);
        go rest
    | "--bundle-dir" :: v :: rest ->
        o.sc_bundle_dir <- Some v;
        go rest
    | "--planted-commit-bug" :: rest ->
        o.sc_planted <- true;
        go rest
    | "--planted-shed-bug" :: rest ->
        o.sc_planted_shed <- true;
        go rest
    | "--quiet" :: rest ->
        o.sc_quiet <- true;
        go rest
    | [ (("--only" | "--step-cap" | "--bundle-dir") as flag) ] ->
        usage_die "%s expects an argument" flag
    | a :: _ -> usage_die "scenarios: unknown argument %S" a
  in
  go args;
  o.sc_only <- List.rev o.sc_only;
  o

(* A scenario failure's repro bundle: the row is the schedule (re-run it
   with --only), so the bundle only needs the verdict and fingerprint. *)
let write_scenario_bundle dir (o : Scenario.outcome) =
  let path = Filename.concat dir (Printf.sprintf "scenario-%s.json" o.o_name) in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"scenario\": %S, \"digest\": %S, \"events\": %d, \"deterministic\": %b, \
     \"committed\": %d, \"ops_ok\": %d, \"ops_failed\": %d, \"issues\": [%s]}\n"
    o.o_name o.o_digest o.o_events o.o_deterministic o.o_committed o.o_ops_ok o.o_ops_failed
    (String.concat ", " (List.map Oracle.issue_to_json o.o_issues));
  close_out oc;
  path

let cmd_scenarios args =
  let o = parse_scenario_args args in
  if o.sc_list then begin
    List.iter
      (fun (s : Scenario.t) ->
        Printf.printf "%-28s %d replicas, %.0fs, %d steps\n" s.name s.replicas s.until
          (List.length s.steps))
      Scenario.table;
    exit 0
  end;
  let rows =
    match o.sc_only with
    | [] -> Scenario.table
    | names ->
        List.map
          (fun n ->
            match Scenario.find n with
            | Some s -> s
            | None -> usage_die "scenarios: unknown scenario %S (see --list)" n)
          names
  in
  let failures = ref 0 in
  List.iter
    (fun row ->
      let outcome =
        Scenario.run ?step_cap:o.sc_step_cap ~planted:o.sc_planted
          ~planted_shed:o.sc_planted_shed row
      in
      let ok = Scenario.passed outcome in
      if not ok then incr failures;
      if (not ok) || not o.sc_quiet then
        Format.printf "%a@." Scenario.pp_outcome outcome;
      if not ok then
        Option.iter
          (fun dir ->
            let path = write_scenario_bundle dir outcome in
            Printf.printf "  bundle: %s\n%!" path)
          o.sc_bundle_dir)
    rows;
  Printf.printf "scenarios: %d row(s), %d failure(s)%s\n%!" (List.length rows) !failures
    (match (o.sc_planted, o.sc_planted_shed) with
    | true, true -> " [planted commit + shed bugs armed]"
    | true, false -> " [planted commit bug armed]"
    | false, true -> " [planted shed bug armed]"
    | false, false -> "");
  exit (if !failures > 0 then 1 else 0)

let main () =
  match Array.to_list Sys.argv with
  | _ :: "run" :: rest -> cmd_run rest
  | _ :: "replay" :: rest -> cmd_replay rest
  | _ :: "shrink" :: rest -> cmd_shrink rest
  | _ :: "scenarios" :: rest -> cmd_scenarios rest
  | _ :: (("--help" | "-h") :: _ | []) ->
      print_string usage;
      exit 0
  | _ :: cmd :: _ -> usage_die "unknown command %S" cmd
  | [] -> usage_die "no command"
