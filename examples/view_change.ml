(* View change: a weak set whose membership directory is replicated over
   a three-node VSR group (f = 1).  The leader is crashed in the middle
   of an optimistic iteration.  The iterator keeps yielding the members
   it can reach, then parks on the two objects homed on the dead node
   (Figure 6 semantics: block, never signal a failure); meanwhile the
   backups elect a new leader and directory mutations keep committing
   through it — the client never sees Unreachable.  When the old leader
   recovers, the iteration finishes, picking up the member that was
   added after the failover (current vintage).

   Run with: dune exec examples/view_change.exe *)

open Weakset_sim
open Weakset_net
open Weakset_store
open Weakset_core
module Group = Weakset_repl.Group

let set_id = 1

let () =
  Printf.printf "== view change: iterating across a leader crash ==\n\n";
  let eng = Engine.create ~seed:11L () in
  let topo = Topology.create () in
  (* Nodes 0-2 replicate the directory; node 3 runs the client. *)
  let nodes = Topology.clique topo 4 ~latency:1.0 in
  let rpc = Rpc.create eng topo in
  let fault = Fault.create eng topo in
  let servers =
    Array.init 3 (fun i ->
        let s = Node_server.create rpc nodes.(i) in
        Node_server.host_directory s ~set_id
          ~policy:Node_server.Defer_removes_while_iterating;
        s)
  in
  let members = [ nodes.(0); nodes.(1); nodes.(2) ] in
  let ledger = Group.Ledger.create () in
  let groups =
    Array.init 3 (fun i ->
        Group.create rpc ~set_id ~members ~me:nodes.(i) ~ledger ~server:servers.(i))
  in
  Array.iter (fun g -> Group.start g ~until:200.0) groups;
  let client = Client.create rpc nodes.(3) in
  let sref = { Protocol.set_id; coordinator = nodes.(0); replicas = [ nodes.(1); nodes.(2) ] } in

  (* The old leader comes back a minute into the run; the fault signal
     lets the parked iterator wake on the repair instead of polling. *)
  Fault.heal_node fault ~at:75.0 nodes.(0);

  Engine.spawn eng ~name:"demo" (fun () ->
      (* Populate through the group: six objects homed round-robin on
         the replicas, each Add quorum-committed before it is acked. *)
      for i = 1 to 6 do
        let home = i mod 3 in
        let oid = Oid.make ~num:i ~home:nodes.(home) in
        Node_server.put_object servers.(home) oid
          (Svalue.make (Printf.sprintf "object %d's contents" i));
        match Client.dir_add client sref oid with
        | Ok () -> ()
        | Error e -> failwith ("populate failed: " ^ Client.error_to_string e)
      done;
      Printf.printf "t=%5.1f  six members committed; every replica at version %d\n"
        (Engine.now eng)
        (Version.to_int (Group.commit groups.(0)));

      let set =
        Weak_set.make ~heal_signal:(Fault.signal fault)
          ~coordinator_server:servers.(0) client sref Semantics.optimistic
      in
      let iter, _ = Weak_set.elements set in
      let yielded = ref 0 in
      (* Pull two elements, then kill the leader mid-iteration. *)
      for _ = 1 to 2 do
        match Iterator.next iter with
        | Iterator.Yield (oid, _) ->
            incr yielded;
            Printf.printf "t=%5.1f  yield %s\n" (Engine.now eng) (Oid.to_string oid)
        | Iterator.Done -> failwith "iterator finished too early"
        | Iterator.Failed e -> failwith ("iterator failed: " ^ Client.error_to_string e)
      done;
      Printf.printf "t=%5.1f  *** crashing the leader (node %s) mid-iteration ***\n"
        (Engine.now eng)
        (Nodeid.to_string nodes.(0));
      Fault.crash_node fault nodes.(0);

      (* Figure 6: the iterator never fails.  It yields every reachable
         member, parks on the ones homed on the dead node, and resumes
         when the repair lands. *)
      let rec drain () =
        match Iterator.next iter with
        | Iterator.Yield (oid, _) ->
            incr yielded;
            Printf.printf "t=%5.1f  yield %s\n" (Engine.now eng) (Oid.to_string oid);
            drain ()
        | Iterator.Done ->
            Printf.printf "t=%5.1f  iteration finished: %d yields across the crash\n"
              (Engine.now eng) !yielded
        | Iterator.Failed e -> failwith ("iterator failed: " ^ Client.error_to_string e)
      in
      drain ();
      Printf.printf "\nledger holds %d committed ops; every ack survived the view change.\n"
        (List.length (Group.Ledger.entries ledger)));

  Engine.spawn eng ~name:"failover-writer" (fun () ->
      (* While the iterator is parked on the dead node, the group has
         already moved on: a new view, a new leader, and mutations that
         commit without the old leader. *)
      Engine.sleep eng 55.0;
      Printf.printf "t=%5.1f  survivors in view %d (leader: node %s), %s\n" (Engine.now eng)
        (Group.view groups.(1))
        (Nodeid.to_string (Group.leader_hint groups.(1)))
        (if Group.stable [ groups.(1); groups.(2) ] then "stable" else "electing");
      let extra = Oid.make ~num:7 ~home:nodes.(1) in
      Node_server.put_object servers.(1) extra (Svalue.make "added after failover");
      match Client.dir_add client sref extra with
      | Ok () ->
          Printf.printf
            "t=%5.1f  post-failover add committed (no Unreachable: the client followed \
             the Not_leader hint)\n"
            (Engine.now eng)
      | Error e -> failwith ("post-failover add failed: " ^ Client.error_to_string e));
  Engine.run_and_check eng
