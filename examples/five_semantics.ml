(* One workload, five design points.

   The same scripted scenario runs under each of the five semantics —
   the paper's four (immutable, snapshot, grow-only, optimistic) plus
   the linearizable snapshot iterator — on an identical fresh cluster:
   eight members, then while the query is iterating with think-time, a
   concurrent writer adds a ninth member and removes one of the
   originals.  The writer goes through a handle of the same semantics,
   so the immutable point's write lock is honoured rather than
   bypassed.

   Every run is judged by the one parametric visibility checker
   (Weakset_spec.Visibility, via the Figures config table), configured
   for that design point.  The side-by-side output shows exactly what
   each point trades: whether the add is observed, whether the removed
   member is still yielded, and what the spec says about it.

   Run with: dune exec examples/five_semantics.exe *)

open Weakset_sim
open Weakset_net
open Weakset_store
open Weakset_core

let () =
  Printf.printf "== one workload, five design points ==\n\n";
  Printf.printf
    "8 members; at t=6 a writer adds #9, at t=9 it removes #2 (same-semantics handle).\n\n";
  Printf.printf "%-12s %-28s %-9s %-10s %s\n" "semantics" "yielded" "saw add?" "outcome"
    "parametric checker says";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun (name, semantics) ->
      let eng = Engine.create ~seed:11L () in
      let topo = Topology.create () in
      let nodes = Topology.clique topo 6 ~latency:1.0 in
      let rpc = Rpc.create eng topo in
      let servers = Array.map (fun n -> Node_server.create rpc n) nodes in
      (* Ghost copies for grow-only, so its type constraint is well-posed
         under the concurrent remove (§3.3). *)
      let policy =
        if semantics = Semantics.grow_only then Node_server.Defer_removes_while_iterating
        else Node_server.Immediate
      in
      Node_server.host_directory servers.(0) ~set_id:1 ~policy;
      let client = Client.create rpc nodes.(5) in
      let sref = { Protocol.set_id = 1; coordinator = nodes.(0); replicas = [] } in
      let dir = Node_server.directory_truth servers.(0) ~set_id:1 in
      let oid_of i = Oid.make ~num:i ~home:nodes.(1 + (i mod 4)) in
      let put i =
        let oid = oid_of i in
        Node_server.put_object servers.(1 + (i mod 4)) oid
          (Svalue.make (Printf.sprintf "object %d's contents" i));
        oid
      in
      for i = 1 to 8 do
        ignore (Directory.apply dir (Directory.Add (put i)))
      done;

      (* The concurrent writer: same semantics, so immutable's write lock
         makes it wait for the query instead of racing it. *)
      let writer = Weak_set.make ~coordinator_server:servers.(0) client sref semantics in
      Engine.spawn eng ~name:"writer" (fun () ->
          Engine.sleep eng 6.0;
          ignore (Weak_set.add writer (put 9));
          Engine.sleep eng 3.0;
          ignore (Weak_set.remove writer (oid_of 2)));

      let set = Weak_set.make ~coordinator_server:servers.(0) client sref semantics in
      Engine.spawn eng ~name:"query" (fun () ->
          let iter, inst = Weak_set.elements ~instrument:true set in
          let nums = ref [] in
          let ending = ref "blocked" in
          let rec loop () =
            match Iterator.next iter with
            | Iterator.Yield (oid, _) ->
                nums := Oid.num oid :: !nums;
                Engine.sleep eng 1.0;
                loop ()
            | Iterator.Done -> ending := "returns"
            | Iterator.Failed e -> ending := "fails(" ^ Client.error_to_string e ^ ")"
          in
          loop ();
          Iterator.close iter;
          let yielded = List.sort compare (List.rev !nums) in
          let verdict_text =
            match inst with
            | None -> "-"
            | Some inst ->
                (* The churn-appropriate judge for each point: the §3.4
                   window spec — which for lin is the lin config itself. *)
                let spec = Semantics.window_spec_of semantics in
                Weakset_spec.Report.summary spec
                  (Instrument.computation inst)
                  (Instrument.check inst spec)
          in
          Printf.printf "%-12s %-28s %-9s %-10s %s\n" name
            (String.concat "," (List.map string_of_int yielded))
            (if List.mem 9 yielded then "yes" else "no")
            !ending verdict_text);
      Engine.run_and_check eng)
    [
      ("immutable", Semantics.immutable);
      ("snapshot", Semantics.snapshot);
      ("grow-only", Semantics.grow_only);
      ("optimistic", Semantics.optimistic);
      ("lin", Semantics.lin);
    ];
  Printf.printf "\n";
  Printf.printf "immutable  locks writers out: neither mutation lands until it returns.\n";
  Printf.printf "snapshot   fixes membership at open: never sees #9, may still yield #2.\n";
  Printf.printf "grow-only  defers the remove (ghost copy) and picks up the add.\n";
  Printf.printf "optimistic sees whatever each re-read finds - cheapest, weakest.\n";
  Printf.printf "lin        pins one version: equals a directory state, never a mix.\n"
